"""The F-box: the one-way transformation between processor and network.

"We assume that somehow or other all messages entering and leaving every
processor undergo a simple transformation that users cannot bypass."
(§2.2).  On egress the F-box leaves the destination port alone and applies
the public one-way function F to the reply and signature fields, so the
secrets G' and S never reach the wire.  On ingress it admits only messages
whose destination matches a port for which the processor has done a GET —
and a GET(X) listens on F(X), which is what defeats an intruder who tries
GET(P) with a public put-port.

The paper situates the F-box "on the VLSI chip that is used to interface
to the network" or "inside the wall socket"; here it is a small object the
simulated NIC is built around, with the same can't-bypass guarantee
because :class:`~repro.net.nic.Nic` offers no path to the wire around it.
"""

from repro.core.ports import NULL_PORT, Port
from repro.crypto.oneway import default_oneway

#: Port-image cache bound; dropped wholesale when full (see
#: ``docs/PERFORMANCE.md`` — recomputing F is cheap, bookkeeping is not).
_IMAGE_CACHE_MAX = 1 << 16


class FBox:
    """One F-box, shared one-way function F across the whole network."""

    def __init__(self, oneway=None):
        self._f = oneway or default_oneway()
        # Cache misses go through the uncached compute when F offers one,
        # so each value->image mapping lives in exactly one cache (this
        # one).  Only a real OneWayFunction guarantees its output is
        # masked to the port width, so only its results may skip Port
        # validation; a plain callable F goes through the checked
        # constructor (None here selects that path in one_way).
        self._f_raw = getattr(self._f, "raw", None)
        # value -> Port(F(value)).  Sound to memoize: F is deterministic
        # over the 48-bit port space and Port objects are immutable.  The
        # hot path one-ways the same value repeatedly (a transaction's
        # reply secret is one-wayed by listen, egress, poll and unlisten),
        # and the cache also skips re-constructing the Port wrapper.
        self._images = {NULL_PORT.value: NULL_PORT}

    def one_way(self, port):
        """F applied to a single port value (F-box primitive)."""
        value = port.value
        image = self._images.get(value)
        if image is not None:
            return image
        raw = self._f_raw
        if raw is not None:
            # _unchecked is sound here: OneWayFunction masks its output.
            image = Port._unchecked(raw(value))
        else:
            image = Port(self._f(value))
        if len(self._images) >= _IMAGE_CACHE_MAX:
            self._images.clear()
            self._images[NULL_PORT.value] = NULL_PORT
        self._images[value] = image
        return image

    def transform_egress(self, message):
        """The outbound transformation (Fig. 1).

        Destination passes through untouched ("The F-box on the sender's
        side does not perform any transformation on the P field"); the
        reply and signature fields are replaced by their one-way images.
        The copy is a single trusted shallow clone — the input message was
        validated when built, and the two replacement fields are Ports.
        One code path does the actual transformation for both this and
        the owned variant, so the egress rule cannot fork between them.
        """
        return self.transform_egress_owned(message._evolve())

    def transform_egress_owned(self, message):
        """The same outbound transformation, applied in place.

        Only for messages the caller constructed privately and will never
        reuse (e.g. the copy ``trans`` just made): it skips the defensive
        copy but performs the identical, unconditional transformation —
        this is an ownership optimization, never an F-box bypass.
        """
        fields = message.__dict__
        images = self._images
        reply = fields["reply"]
        signature = fields["signature"]
        # Ports are always truthy, so `or` falls through only on a miss.
        fields["reply"] = images.get(reply.value) or self.one_way(reply)
        fields["signature"] = (
            images.get(signature.value) or self.one_way(signature)
        )
        return message

    def one_way_batch(self, ports):
        """F applied to a batch of ports in one pass.

        Identical results to calling :meth:`one_way` per port (same
        cache, same masking); only the per-call bookkeeping is
        amortized.  Used by batch GET registration, where every port is
        a fresh random value and therefore a cache miss.
        """
        images = self._images
        raw = self._f_raw
        if len(images) + len(ports) >= _IMAGE_CACHE_MAX:
            images.clear()
            images[NULL_PORT.value] = NULL_PORT
        if raw is None:
            return [self.one_way(port) for port in ports]
        unchecked = Port._unchecked
        out = []
        for port in ports:
            value = port.value
            image = images.get(value)
            if image is None:
                images[value] = image = unchecked(raw(value))
            out.append(image)
        return out

    def listen_port(self, get_port):
        """The wire port a GET(get_port) actually listens on: F(get_port).

        For a genuine server holding the secret G this is the public
        put-port P = F(G).  For an intruder who only knows P it is the
        useless port F(P).
        """
        return self.one_way(get_port)

    def __repr__(self):
        return "FBox(F=%r)" % (self._f,)
