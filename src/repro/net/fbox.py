"""The F-box: the one-way transformation between processor and network.

"We assume that somehow or other all messages entering and leaving every
processor undergo a simple transformation that users cannot bypass."
(§2.2).  On egress the F-box leaves the destination port alone and applies
the public one-way function F to the reply and signature fields, so the
secrets G' and S never reach the wire.  On ingress it admits only messages
whose destination matches a port for which the processor has done a GET —
and a GET(X) listens on F(X), which is what defeats an intruder who tries
GET(P) with a public put-port.

The paper situates the F-box "on the VLSI chip that is used to interface
to the network" or "inside the wall socket"; here it is a small object the
simulated NIC is built around, with the same can't-bypass guarantee
because :class:`~repro.net.nic.Nic` offers no path to the wire around it.
"""

from repro.core.ports import NULL_PORT, Port
from repro.crypto.oneway import default_oneway


class FBox:
    """One F-box, shared one-way function F across the whole network."""

    def __init__(self, oneway=None):
        self._f = oneway or default_oneway()

    def one_way(self, port):
        """F applied to a single port value (F-box primitive)."""
        if port.is_null:
            return NULL_PORT
        return Port(self._f(port.value))

    def transform_egress(self, message):
        """The outbound transformation (Fig. 1).

        Destination passes through untouched ("The F-box on the sender's
        side does not perform any transformation on the P field"); the
        reply and signature fields are replaced by their one-way images.
        """
        return message.copy(
            reply=self.one_way(message.reply),
            signature=self.one_way(message.signature),
        )

    def listen_port(self, get_port):
        """The wire port a GET(get_port) actually listens on: F(get_port).

        For a genuine server holding the secret G this is the public
        put-port P = F(G).  For an intruder who only knows P it is the
        useless port F(P).
        """
        return self.one_way(get_port)

    def __repr__(self):
        return "FBox(F=%r)" % (self._f,)
