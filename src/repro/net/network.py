"""A simulated broadcast LAN with unforgeable source addresses.

The 1986 setting is a single Ethernet-style segment: every frame
physically reaches every station, interface hardware filters by
destination, and "an intruder can forge nearly all parts of a message
being sent except the source address, which is supplied by the network
interface hardware" (§2.4).  The simulator enforces exactly that:

* :meth:`SimNetwork.send` stamps the frame's source with the sending
  NIC's address — senders cannot choose it;
* delivery is by destination *port* (the F-box admission check) or, for
  unicast frames, by (machine, port);
* registered wiretaps see every frame, reproducing a passive intruder;
* counters record frames, deliveries, and drops so benchmarks can report
  message costs (e.g. restrict-via-server = 2 frames vs scheme 3 = 0).
"""

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.net.message import Message


@dataclass(frozen=True)
class Frame:
    """One frame as it appears on the wire.

    ``src`` is the network-stamped source machine address.  ``dst_machine``
    is ``None`` for ordinary port-addressed frames (the hardware filter
    decides who takes it) and a machine address for located unicasts.
    """

    src: int
    dst_machine: Optional[int]
    message: Message


class SimNetwork:
    """The shared medium connecting every NIC in one simulated system."""

    def __init__(self):
        self._nics = {}
        self._addresses = itertools.count(1)
        self._taps = []
        self._round_robin = {}
        # Wire statistics, reset via reset_stats().
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.broadcasts = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def attach(self, nic):
        """Attach a NIC and assign its (unforgeable) machine address."""
        address = next(self._addresses)
        self._nics[address] = nic
        return address

    def detach(self, address):
        """Remove a machine from the network (e.g. simulating a crash)."""
        self._nics.pop(address, None)

    def addresses(self):
        """Snapshot of attached machine addresses."""
        return sorted(self._nics)

    # ------------------------------------------------------------------
    # wire primitives
    # ------------------------------------------------------------------

    def send(self, src_nic, message, dst_machine=None):
        """Put one frame on the wire.

        The source address comes from the NIC object itself, never from
        the caller — this is the §2.4 unforgeability assumption.  Returns
        True if some NIC accepted the frame.
        """
        frame = Frame(src=src_nic.address, dst_machine=dst_machine, message=message)
        self.frames_sent += 1
        for tap in self._taps:
            tap(frame)
        delivered = self._route(frame)
        if delivered:
            self.frames_delivered += 1
        else:
            self.frames_dropped += 1
        return delivered

    def _route(self, frame):
        if frame.dst_machine is not None:
            nic = self._nics.get(frame.dst_machine)
            return bool(nic) and nic.accept(frame)
        # Port-addressed frame: every station sees it; the admission
        # filters decide.  If several machines listen on the same port
        # (a multi-server service), rotate among them like a hardware
        # arbiter would.
        takers = [
            addr
            for addr, nic in sorted(self._nics.items())
            if nic.admits(frame.message.dest)
        ]
        if not takers:
            return False
        start = self._round_robin.get(frame.message.dest, 0)
        addr = takers[start % len(takers)]
        self._round_robin[frame.message.dest] = start + 1
        return self._nics[addr].accept(frame)

    def broadcast(self, src_nic, message):
        """Deliver a frame to every station's broadcast handler (LOCATE)."""
        frame = Frame(src=src_nic.address, dst_machine=None, message=message)
        self.frames_sent += 1
        self.broadcasts += 1
        for tap in self._taps:
            tap(frame)
        count = 0
        for addr, nic in sorted(self._nics.items()):
            if addr != src_nic.address and nic.accept_broadcast(frame):
                count += 1
        self.frames_delivered += count
        return count

    # ------------------------------------------------------------------
    # intruder instrumentation
    # ------------------------------------------------------------------

    def add_tap(self, callback):
        """Register a promiscuous wiretap; it sees every frame verbatim."""
        self._taps.append(callback)

    def remove_tap(self, callback):
        self._taps.remove(callback)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def reset_stats(self):
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.broadcasts = 0

    def stats(self):
        """Current wire counters as a dict (stable keys for benchmarks)."""
        return {
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_dropped": self.frames_dropped,
            "broadcasts": self.broadcasts,
        }

    def __repr__(self):
        return "SimNetwork(machines=%d, frames_sent=%d)" % (
            len(self._nics),
            self.frames_sent,
        )
