"""A simulated broadcast LAN with unforgeable source addresses.

The 1986 setting is a single Ethernet-style segment: every frame
physically reaches every station, interface hardware filters by
destination, and "an intruder can forge nearly all parts of a message
being sent except the source address, which is supplied by the network
interface hardware" (§2.4).  The simulator enforces exactly that:

* :meth:`SimNetwork.send` stamps the frame's source with the sending
  NIC's address — senders cannot choose it;
* delivery is by destination *port* (the F-box admission check) or, for
  unicast frames, by (machine, port);
* registered wiretaps see every frame, reproducing a passive intruder;
* counters record frames, deliveries, and drops so benchmarks can report
  message costs (e.g. restrict-via-server = 2 frames vs scheme 3 = 0).
"""

import itertools
from bisect import insort
from collections import deque
from typing import NamedTuple, Optional

from repro.net.message import Message
from repro.net.sched import EventLoop, LatencyModel, VirtualClock, VirtualTimeLoop


class Frame(NamedTuple):
    """One frame as it appears on the wire.

    ``src`` is the network-stamped source machine address.  ``dst_machine``
    is ``None`` for ordinary port-addressed frames (the hardware filter
    decides who takes it) and a machine address for located unicasts.

    A named tuple rather than a dataclass: frames are created twice per
    transaction on the hot path, and tuple construction is several times
    cheaper while staying just as immutable.
    """

    src: int
    dst_machine: Optional[int]
    message: Message


class SimNetwork:
    """The shared medium connecting every NIC in one simulated system.

    Three delivery disciplines share all the routing machinery:

    * ``synchronous=True`` (default) — the original recursive model:
      ``send`` delivers straight into the destination's admission filter,
      so a server handler runs (and replies) before the sender's ``put``
      returns.  Exactly one transaction is ever in flight.
    * ``synchronous=False`` — deferred delivery through an
      :class:`~repro.net.sched.EventLoop`: ``send`` is an O(1) enqueue
      (admission is pre-checked against the routing index so the return
      value keeps its meaning) and frames are dispatched by ``pump()``.
      With ``auto_drain=True`` (the default) every top-level ``send``
      drains the loop before returning, so blocking clients behave as in
      synchronous mode while all traffic still flows through real queues;
      ``auto_drain=False`` leaves pumping to the caller, which is what
      pipelined clients use to keep many transactions in flight.
    * ``clock=VirtualClock()`` (optionally with
      ``latency=LatencyModel(rtt_ms=2.8)``) — virtual-clock discrete-event
      mode: ``send`` schedules the frame's *arrival instant* on a
      :class:`~repro.net.sched.VirtualTimeLoop` and ``pump()`` delivers
      events in arrival order, advancing simulated time.  Blocking polls
      (``Nic.poll(timeout=...)``) consume virtual time, never wall time,
      so 1986-era RTTs — and the latency amortization that makes
      pipelining multiplicative — are modeled deterministically on any
      host.  Passing only ``latency`` implies a fresh ``VirtualClock()``.

    ``max_queue_depth`` bounds each per-port ingress queue in deferred
    mode (0 = unbounded); overflowing frames are dropped and counted.
    It is rejected in DES mode, where frames wait on the arrival heap
    rather than per-port queues and nothing overflows.
    """

    def __init__(self, synchronous=True, max_queue_depth=0, auto_drain=True,
                 clock=None, latency=None, faults=None):
        #: Optional :class:`~repro.net.faults.FaultPlan`; None (the
        #: default) keeps every hot path exactly as before — the fault
        #: plane costs one ``is None`` test per send when disabled.
        self._faults = faults
        self._nics = {}
        self._addresses = itertools.count(1)
        self._taps = []
        self._tap_owners = {}
        self._round_robin = {}
        if clock is not None or latency is not None:
            if max_queue_depth:
                # The DES wire has no per-port ingress queues to bound —
                # frames live on the arrival heap until their instant.
                # Refuse rather than silently void the documented
                # drop-and-count contract.
                raise ValueError(
                    "max_queue_depth applies to the event-loop discipline "
                    "(synchronous=False); the DES wire is unbounded"
                )
            self._clock = clock if clock is not None else VirtualClock()
            self._latency = latency if latency is not None else LatencyModel()
            self._loop = VirtualTimeLoop(self, self._clock, self._latency)
        else:
            self._clock = None
            self._latency = None
            self._loop = (
                None if synchronous else EventLoop(self, max_queue_depth)
            )
        self._auto_drain = auto_drain
        # Cached sorted [(address, nic), ...] for broadcast; invalidated
        # on attach/detach instead of re-sorted per LOCATE.
        self._sorted_stations = None
        # Routing index: wire port -> sorted [machine address, ...] of
        # stations with a GET outstanding for it.  NICs keep it current
        # through register_listener/unregister_listener, so port-addressed
        # delivery is one dict lookup instead of a scan of every station.
        self._listeners = {}
        # Reverse index for O(ports-of-machine) cleanup on detach.
        self._ports_by_addr = {}
        # Wire statistics, reset via reset_stats().
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.broadcasts = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def attach(self, nic):
        """Attach a NIC and assign its (unforgeable) machine address."""
        address = next(self._addresses)
        self._nics[address] = nic
        self._ports_by_addr[address] = set()
        self._sorted_stations = None
        return address

    def detach(self, address):
        """Remove a machine from the network (e.g. simulating a crash).

        Everything keyed by the machine goes with it: its routing-index
        entries, any now-idle round-robin counters, and any wiretaps it
        registered with ``owner=address`` — long simulations with churn
        must not accumulate state for dead stations.
        """
        self._nics.pop(address, None)
        self._sorted_stations = None
        for port in self._ports_by_addr.pop(address, ()):
            self._drop_listener(address, port)
        for tap in self._tap_owners.pop(address, ()):
            if tap in self._taps:
                self._taps.remove(tap)

    def addresses(self):
        """Snapshot of attached machine addresses."""
        return sorted(self._nics)

    # ------------------------------------------------------------------
    # routing index (maintained by NICs)
    # ------------------------------------------------------------------

    def register_listener(self, address, wire_port):
        """Record that ``address`` has a GET outstanding for ``wire_port``."""
        ports = self._ports_by_addr.get(address)
        if ports is None:
            return  # detached machine; nothing to route to
        ports.add(wire_port)
        takers = self._listeners.get(wire_port)
        if takers is None:
            self._listeners[wire_port] = [address]
        elif address not in takers:
            insort(takers, address)

    def unregister_listener(self, address, wire_port):
        """Withdraw a GET registration (port unlistened or server stopped)."""
        ports = self._ports_by_addr.get(address)
        if ports is not None:
            ports.discard(wire_port)
        # Inlined fast path for the overwhelmingly common case — the
        # port's only listener (a transaction's reply port) going away.
        takers = self._listeners.get(wire_port)
        if takers is not None and len(takers) == 1:
            if takers[0] == address:
                del self._listeners[wire_port]
                self._round_robin.pop(wire_port, None)
            return
        self._drop_listener(address, wire_port)

    def register_listeners(self, address, wire_ports):
        """Batch :meth:`register_listener` — one call for a pipelined
        client's whole set of fresh reply ports."""
        ports = self._ports_by_addr.get(address)
        if ports is None:
            return  # detached machine; nothing to route to
        listeners = self._listeners
        for wire_port in wire_ports:
            ports.add(wire_port)
            takers = listeners.get(wire_port)
            if takers is None:
                listeners[wire_port] = [address]
            elif address not in takers:
                insort(takers, address)

    def unregister_listeners(self, address, wire_ports):
        """Batch :meth:`unregister_listener`, same single-listener fast
        path per port."""
        ports = self._ports_by_addr.get(address)
        listeners = self._listeners
        round_robin = self._round_robin
        for wire_port in wire_ports:
            if ports is not None:
                ports.discard(wire_port)
            takers = listeners.get(wire_port)
            if takers is None:
                continue
            if len(takers) == 1:
                if takers[0] == address:
                    del listeners[wire_port]
                    round_robin.pop(wire_port, None)
                continue
            self._drop_listener(address, wire_port)

    def _drop_listener(self, address, wire_port):
        takers = self._listeners.get(wire_port)
        if takers is None:
            return
        try:
            takers.remove(address)
        except ValueError:
            return
        if not takers:
            # Last listener gone: drop the index entry and the round-robin
            # counter so per-transaction reply ports cannot accumulate.
            del self._listeners[wire_port]
            self._round_robin.pop(wire_port, None)

    # ------------------------------------------------------------------
    # wire primitives
    # ------------------------------------------------------------------

    def send(self, src_nic, message, dst_machine=None):
        """Put one frame on the wire.

        The source address comes from the NIC object itself, never from
        the caller — this is the §2.4 unforgeability assumption.  Returns
        True if some NIC accepted the frame (in deferred mode: if some
        NIC's admission filter *would* take it, per the routing index).
        """
        frame = Frame(src_nic.address, dst_machine, message)
        self.frames_sent += 1
        if self._taps:
            for tap in self._taps:
                tap(frame)
        if self._faults is not None:
            return self._send_faulty(frame)
        if self._loop is not None:
            if self._clock is not None:
                return self._send_des(frame)
            return self._send_deferred(frame)
        if dst_machine is not None:
            # Located unicast, inlined from _route: one dict hit.
            nic = self._nics.get(dst_machine)
            delivered = nic is not None and nic.accept(frame)
        else:
            delivered = self._route(frame)
        if delivered:
            self.frames_delivered += 1
        else:
            self.frames_dropped += 1
        return delivered

    def _send_deferred(self, frame):
        """Deferred-mode tail of :meth:`send`: pre-check admission against
        the routing index (which mirrors the filters exactly), enqueue in
        O(1), and — under auto-drain — pump the loop before returning so
        blocking callers keep their synchronous-mode behavior.

        Express lane: while the loop is draining, a unicast frame whose
        sink is a passive queue (a client blocked in GET — the shape of
        every transaction reply) is appended to that queue directly.  The
        event loop exists to schedule *computation* (handler dispatch,
        which can recurse, overload, and starve); delivery to a deque has
        no side effects and would provably happen within this same drain,
        so expressing it skips one enqueue/dispatch round trip per reply
        without changing anything a client can observe — including the
        ``max_queue_depth`` bound, which is enforced against the sink.

        Overflow is a *silent* loss at the sender, like a real network
        dropping a frame in a full buffer: send() still returns True (the
        port is admitted), the loss shows up in ``frames_dropped`` /
        ``dropped_overflow`` and as a missing reply.  False still means
        exactly what it means in synchronous mode: nobody admits the
        port.
        """
        loop = self._loop
        dest = frame.message.dest
        if frame.dst_machine is not None:
            faults = self._faults
            if (faults is not None and faults.has_partitions
                    and faults.link_severed(frame.src, frame.dst_machine)):
                # A cut that lands while a drain is in progress must
                # also stop express-lane deliveries; queued frames are
                # culled by the pump itself.
                faults.note_partition_drop(frame.src, frame.dst_machine)
                self.frames_dropped += 1
                return True  # admitted at send time, lost on the cut link
            nic = self._nics.get(frame.dst_machine)
            if nic is None:
                self.frames_dropped += 1
                return False
            sink = nic._sinks.get(dest)
            if sink is None:
                self.frames_dropped += 1
                return False
            if (
                loop._draining
                and type(sink) is deque
                and dest.value not in loop._queues
                and (not loop.max_depth or len(sink) < loop.max_depth)
            ):
                # The _queues guard keeps per-port FIFO order: if earlier
                # frames for this port are still scheduled, this one must
                # line up behind them.
                sink.append(frame)
                nic.received += 1
                self.frames_delivered += 1
                return True
        elif dest not in self._listeners:
            self.frames_dropped += 1
            return False
        if not loop.enqueue(frame):
            self.frames_dropped += 1
            return True  # admitted, then lost to a full queue
        if self._auto_drain and not loop._draining:
            loop.pump()
        return True

    def _send_des(self, frame):
        """DES-mode tail of :meth:`send`: pre-check admission against the
        routing index (so the return value keeps its synchronous-mode
        meaning — False iff nobody admits the port), then schedule the
        frame's arrival instant on the virtual-time loop.

        There is no auto-drain here: delivery *requires* simulated time
        to pass, and only a blocking waiter (``poll(timeout=...)``) or an
        explicit ``pump()`` may advance the clock.  A frame whose taker
        withdraws while it is in flight is dropped at its arrival instant
        (``dropped_dead``), like a packet addressed to a dead host.
        """
        if frame.dst_machine is not None:
            nic = self._nics.get(frame.dst_machine)
            if nic is None or frame.message.dest not in nic._sinks:
                self.frames_dropped += 1
                return False
        elif frame.message.dest not in self._listeners:
            self.frames_dropped += 1
            return False
        self._loop.schedule(frame)
        return True

    def _send_faulty(self, frame):
        """Fault-injection tail of :meth:`send`.

        The return value is the *admission* verdict for the pristine
        frame — computed before the plan fires, so a frame the plan then
        drops is "admitted, then lost", exactly the contract queue
        overflow already has: the sender cannot tell a lossy wire from a
        full buffer.  Each surviving copy (duplicates, corrupted
        replacements, released held-back frames) is dispatched through
        the frame's normal discipline path.
        """
        admitted = self._admits(frame)
        des = self._clock is not None
        for out, extra in self._faults.apply(frame, des=des):
            self._dispatch_faulty(out, extra)
        return admitted

    def _admits(self, frame):
        """Would any station take this frame?  One routing-index lookup."""
        if frame.dst_machine is not None:
            nic = self._nics.get(frame.dst_machine)
            return nic is not None and frame.message.dest in nic._sinks
        return frame.message.dest in self._listeners

    def _dispatch_faulty(self, frame, extra):
        """Put one post-fault frame on its discipline's delivery path."""
        if self._clock is not None:
            if self._admits(frame):
                self._loop.schedule(frame, extra=extra)
            else:
                self.frames_dropped += 1
            return
        if self._loop is not None:
            self._send_deferred(frame)
            return
        if self._deliver_frame(frame):
            self.frames_delivered += 1
        else:
            self.frames_dropped += 1

    def _deliver_frame(self, frame):
        """Deliver one frame *now*, re-checking admission against the live
        filters — the dispatch arm shared by the virtual-time loop.  The
        port-addressed case mirrors :meth:`_route` (single-listener fast
        path, round-robin arbiter for replicated services)."""
        dst = frame.dst_machine
        if dst is not None:
            faults = self._faults
            if (faults is not None and faults.has_partitions
                    and faults.link_severed(frame.src, dst)):
                # The frame was in flight when the cut landed: lost at
                # its arrival instant, like a wire yanked mid-transit.
                faults.note_partition_drop(frame.src, dst)
                return False
            nic = self._nics.get(dst)
            return nic is not None and nic.accept(frame)
        return self._route(frame)

    def _deliver_broadcast(self, frame):
        """Deliver one broadcast frame to every other station's handlers —
        the arrival half of a DES-mode :meth:`broadcast`."""
        stations = self._sorted_stations
        if stations is None:
            stations = self._sorted_stations = sorted(self._nics.items())
        count = 0
        src = frame.src
        faults = self._faults
        partitioned = faults is not None and faults.has_partitions
        for addr, nic in stations:
            if addr == src:
                continue
            if partitioned and faults.link_severed(src, addr):
                # Pairwise cuts bind per receiving station: the segment
                # carries the broadcast, the cut link does not.
                faults.note_partition_drop(src, addr)
                continue
            if nic.accept_broadcast(frame):
                count += 1
        self.frames_delivered += count
        return count

    def send_bulk(self, src_nic, messages, dst_machine=None):
        """Put a batch of same-destination frames on the wire at once.

        The issue half of a pipelined client: every message must carry
        the same ``dest`` port (one admission verdict covers the batch)
        and the same ``dst_machine``.  Sources are stamped from the NIC
        exactly as in :meth:`send`, every tap sees every frame, and in
        deferred mode the whole batch lands on one ingress queue in one
        extend — without the per-frame auto-drain, which is the point:
        the batch stays in flight until the caller pumps.  Returns the
        number of frames *admitted* (0 when nobody listens on the port);
        frames beyond ``max_queue_depth`` are admitted-then-lost, counted
        in ``frames_dropped``/``dropped_overflow`` like any overflow.
        """
        if not messages:
            return 0
        loop = self._loop
        if loop is None or self._faults is not None:
            # Synchronous network (no queue to batch onto) or a faulty
            # wire (every frame must pass the plan individually, in send
            # order): per-frame delivery keeps the respective semantics.
            accepted = 0
            for message in messages:
                if self.send(src_nic, message, dst_machine):
                    accepted += 1
            return accepted
        src = src_nic.address
        frames = [Frame(src, dst_machine, m) for m in messages]
        self.frames_sent += len(frames)
        if self._taps:
            for frame in frames:
                for tap in self._taps:
                    tap(frame)
        dest = messages[0].dest
        if dst_machine is not None:
            nic = self._nics.get(dst_machine)
            admitted = nic is not None and dest in nic._sinks
        else:
            admitted = dest in self._listeners
        if not admitted:
            self.frames_dropped += len(frames)
            return 0
        if self._clock is not None:
            # DES mode: one admission verdict for the batch, one arrival
            # instant per frame (equal delays arrive at the same instant
            # and deliver in send order — the heap breaks ties by
            # schedule sequence).
            schedule = loop.schedule
            for frame in frames:
                schedule(frame)
            return len(frames)
        enqueued = loop.enqueue_bulk(dest, frames)
        if enqueued != len(frames):
            self.frames_dropped += len(frames) - enqueued
        return len(frames)

    def send_unicast_bulk(self, src_nic, pairs):
        """Put a batch of unicast frames on the wire — the egress shape of
        a batch server's replies: ``pairs`` is ``[(message, dst), ...]``.

        Per-frame behavior is exactly :meth:`send`'s (source stamping,
        taps, counters, express-or-enqueue in deferred mode); the batch
        only hoists the per-call setup.  Returns the number accepted.
        """
        loop = self._loop
        if (loop is None or self._taps or self._clock is not None
                or self._faults is not None):
            # Synchronous, tapped, DES, or faulty delivery: per-frame
            # send keeps the respective semantics (recursion, tap order,
            # one arrival instant per reply, or per-frame fault draws).
            accepted = 0
            for message, dst in pairs:
                if self.send(src_nic, message, dst):
                    accepted += 1
            return accepted
        src = src_nic.address
        nics = self._nics
        queues = loop._queues
        express = loop._draining
        max_depth = loop.max_depth
        admitted = 0
        count = 0
        delivered = 0
        for message, dst in pairs:
            count += 1
            frame = Frame(src, dst, message)
            nic = nics.get(dst)
            if nic is None:
                continue
            dest = message.dest
            sink = nic._sinks.get(dest)
            if sink is None:
                continue
            admitted += 1
            if (
                express
                and type(sink) is deque
                and dest.value not in queues
                and (not max_depth or len(sink) < max_depth)
            ):
                # The express lane of _send_deferred, hoisted.
                sink.append(frame)
                nic.received += 1
                delivered += 1
            elif not loop.enqueue(frame):
                # Admitted, then lost to a full queue — a silent drop at
                # the sender, visible only in the counters.
                self.frames_dropped += 1
        self.frames_sent += count
        self.frames_delivered += delivered
        self.frames_dropped += count - admitted
        if self._auto_drain and not loop._draining:
            loop.pump()
        return admitted

    def _route(self, frame):
        # Unicast frames are handled inline by send(); only port-addressed
        # frames reach here.
        # Port-addressed frame: every station sees it; the admission
        # filters decide.  The listener index answers "who admits this
        # port" in one lookup — physically every station still receives
        # the frame (taps above model that), the index only replaces the
        # per-frame scan of every NIC's filter.  If several machines
        # listen on the same port (a multi-server service), rotate among
        # them like a hardware arbiter would.
        dest = frame.message.dest
        takers = self._listeners.get(dest)
        if not takers:
            return False
        faults = self._faults
        if faults is not None and faults.has_partitions:
            src = frame.src
            reachable = [a for a in takers if not faults.link_severed(src, a)]
            if not reachable:
                faults.note_partition_drop(src, None)
                return False
            takers = reachable
        if len(takers) == 1:
            return self._nics[takers[0]].accept(frame)
        start = self._round_robin.get(dest, 0)
        self._round_robin[dest] = start + 1
        return self._nics[takers[start % len(takers)]].accept(frame)

    def broadcast(self, src_nic, message):
        """Deliver a frame to every station's broadcast handler (LOCATE).

        Broadcast models the shared segment itself, so it is delivered
        immediately in the synchronous and deferred disciplines; replies
        the handlers send ride the deferred queues like any other frame.
        Under a virtual clock the broadcast propagates like everything
        else: one event delivers it to every station at ``now + delay``,
        so a LOCATE costs a full virtual RTT (broadcast out, HERE back) —
        the §4 economics the DES mode exists to model.  The return value
        is then the number of *other* attached stations (who will all see
        the frame at its arrival instant), not a delivery count.
        """
        frame = Frame(src=src_nic.address, dst_machine=None, message=message)
        self.frames_sent += 1
        self.broadcasts += 1
        for tap in self._taps:
            tap(frame)
        des = self._clock is not None
        if self._faults is not None:
            copies = self._faults.apply_broadcast(frame, des=des)
        else:
            copies = ((frame, 0.0),)
        if des:
            for out, extra in copies:
                self._loop.schedule(out, broadcast=True, extra=extra)
            return len(self._nics) - (src_nic.address in self._nics)
        stations = self._sorted_stations
        if stations is None:
            stations = self._sorted_stations = sorted(self._nics.items())
        count = 0
        src = src_nic.address
        faults = self._faults
        partitioned = faults is not None and faults.has_partitions
        for out, _ in copies:
            for addr, nic in stations:
                if addr == src:
                    continue
                if partitioned and faults.link_severed(src, addr):
                    faults.note_partition_drop(src, addr)
                    continue
                if nic.accept_broadcast(out):
                    count += 1
        self.frames_delivered += count
        return count

    # ------------------------------------------------------------------
    # deferred-mode scheduling
    # ------------------------------------------------------------------

    @property
    def synchronous(self):
        """True when delivery recurses into accept() during send()."""
        return self._loop is None

    @property
    def loop(self):
        """The :class:`~repro.net.sched.EventLoop` /
        :class:`~repro.net.sched.VirtualTimeLoop`, or None when
        synchronous."""
        return self._loop

    @property
    def clock(self):
        """The :class:`~repro.net.sched.VirtualClock`, or None outside
        DES mode.  Stations read this once at attach time to decide
        whether their blocking polls consume virtual or wall time."""
        return self._clock

    @property
    def latency(self):
        """The :class:`~repro.net.sched.LatencyModel`, or None outside
        DES mode."""
        return self._latency

    @property
    def faults(self):
        """The :class:`~repro.net.faults.FaultPlan`, or None on a
        perfect wire (the default)."""
        return self._faults

    @property
    def pending(self):
        """Frames queued for later dispatch (always 0 when synchronous)."""
        return self._loop.pending if self._loop is not None else 0

    def pump(self, budget=None):
        """Dispatch up to ``budget`` deferred frames (all if None).

        A no-op returning 0 in synchronous mode, so callers need not care
        which discipline the network runs.
        """
        return self._loop.pump(budget) if self._loop is not None else 0

    def run(self):
        """Drain every deferred frame; returns the number dispatched."""
        return self.pump(None)

    # ------------------------------------------------------------------
    # intruder instrumentation
    # ------------------------------------------------------------------

    def add_tap(self, callback, owner=None):
        """Register a promiscuous wiretap; it sees every frame verbatim.

        ``owner`` optionally ties the tap to a machine address so that
        :meth:`detach` of that machine also removes the tap (an intruder's
        wall-socket tap dies with its station).
        """
        self._taps.append(callback)
        if owner is not None:
            self._tap_owners.setdefault(owner, []).append(callback)

    def remove_tap(self, callback):
        """Remove a tap; a no-op if it is already gone (e.g. its owning
        machine detached first)."""
        if callback in self._taps:
            self._taps.remove(callback)
        for owner, taps in list(self._tap_owners.items()):
            if callback in taps:
                taps.remove(callback)
                if not taps:
                    del self._tap_owners[owner]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def reset_stats(self):
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.broadcasts = 0
        loop = self._loop
        if loop is not None:
            loop.reset_stats()

    def stats(self):
        """Current wire counters as a dict (stable keys for benchmarks).

        In deferred mode a ``scheduler`` sub-dict carries the event
        loop's queue counters; the top-level keys are identical in both
        modes.
        """
        counters = {
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_dropped": self.frames_dropped,
            "broadcasts": self.broadcasts,
        }
        if self._loop is not None:
            counters["scheduler"] = self._loop.stats()
        if self._faults is not None:
            counters["faults"] = self._faults.stats()
        return counters

    def __repr__(self):
        return "SimNetwork(machines=%d, frames_sent=%d)" % (
            len(self._nics),
            self.frames_sent,
        )
