"""A simulated broadcast LAN with unforgeable source addresses.

The 1986 setting is a single Ethernet-style segment: every frame
physically reaches every station, interface hardware filters by
destination, and "an intruder can forge nearly all parts of a message
being sent except the source address, which is supplied by the network
interface hardware" (§2.4).  The simulator enforces exactly that:

* :meth:`SimNetwork.send` stamps the frame's source with the sending
  NIC's address — senders cannot choose it;
* delivery is by destination *port* (the F-box admission check) or, for
  unicast frames, by (machine, port);
* registered wiretaps see every frame, reproducing a passive intruder;
* counters record frames, deliveries, and drops so benchmarks can report
  message costs (e.g. restrict-via-server = 2 frames vs scheme 3 = 0).
"""

import itertools
from bisect import insort
from typing import NamedTuple, Optional

from repro.net.message import Message


class Frame(NamedTuple):
    """One frame as it appears on the wire.

    ``src`` is the network-stamped source machine address.  ``dst_machine``
    is ``None`` for ordinary port-addressed frames (the hardware filter
    decides who takes it) and a machine address for located unicasts.

    A named tuple rather than a dataclass: frames are created twice per
    transaction on the hot path, and tuple construction is several times
    cheaper while staying just as immutable.
    """

    src: int
    dst_machine: Optional[int]
    message: Message


class SimNetwork:
    """The shared medium connecting every NIC in one simulated system."""

    def __init__(self):
        self._nics = {}
        self._addresses = itertools.count(1)
        self._taps = []
        self._tap_owners = {}
        self._round_robin = {}
        # Routing index: wire port -> sorted [machine address, ...] of
        # stations with a GET outstanding for it.  NICs keep it current
        # through register_listener/unregister_listener, so port-addressed
        # delivery is one dict lookup instead of a scan of every station.
        self._listeners = {}
        # Reverse index for O(ports-of-machine) cleanup on detach.
        self._ports_by_addr = {}
        # Wire statistics, reset via reset_stats().
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.broadcasts = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def attach(self, nic):
        """Attach a NIC and assign its (unforgeable) machine address."""
        address = next(self._addresses)
        self._nics[address] = nic
        self._ports_by_addr[address] = set()
        return address

    def detach(self, address):
        """Remove a machine from the network (e.g. simulating a crash).

        Everything keyed by the machine goes with it: its routing-index
        entries, any now-idle round-robin counters, and any wiretaps it
        registered with ``owner=address`` — long simulations with churn
        must not accumulate state for dead stations.
        """
        self._nics.pop(address, None)
        for port in self._ports_by_addr.pop(address, ()):
            self._drop_listener(address, port)
        for tap in self._tap_owners.pop(address, ()):
            if tap in self._taps:
                self._taps.remove(tap)

    def addresses(self):
        """Snapshot of attached machine addresses."""
        return sorted(self._nics)

    # ------------------------------------------------------------------
    # routing index (maintained by NICs)
    # ------------------------------------------------------------------

    def register_listener(self, address, wire_port):
        """Record that ``address`` has a GET outstanding for ``wire_port``."""
        ports = self._ports_by_addr.get(address)
        if ports is None:
            return  # detached machine; nothing to route to
        ports.add(wire_port)
        takers = self._listeners.get(wire_port)
        if takers is None:
            self._listeners[wire_port] = [address]
        elif address not in takers:
            insort(takers, address)

    def unregister_listener(self, address, wire_port):
        """Withdraw a GET registration (port unlistened or server stopped)."""
        ports = self._ports_by_addr.get(address)
        if ports is not None:
            ports.discard(wire_port)
        # Inlined fast path for the overwhelmingly common case — the
        # port's only listener (a transaction's reply port) going away.
        takers = self._listeners.get(wire_port)
        if takers is not None and len(takers) == 1:
            if takers[0] == address:
                del self._listeners[wire_port]
                self._round_robin.pop(wire_port, None)
            return
        self._drop_listener(address, wire_port)

    def _drop_listener(self, address, wire_port):
        takers = self._listeners.get(wire_port)
        if takers is None:
            return
        try:
            takers.remove(address)
        except ValueError:
            return
        if not takers:
            # Last listener gone: drop the index entry and the round-robin
            # counter so per-transaction reply ports cannot accumulate.
            del self._listeners[wire_port]
            self._round_robin.pop(wire_port, None)

    # ------------------------------------------------------------------
    # wire primitives
    # ------------------------------------------------------------------

    def send(self, src_nic, message, dst_machine=None):
        """Put one frame on the wire.

        The source address comes from the NIC object itself, never from
        the caller — this is the §2.4 unforgeability assumption.  Returns
        True if some NIC accepted the frame.
        """
        frame = Frame(src_nic.address, dst_machine, message)
        self.frames_sent += 1
        if self._taps:
            for tap in self._taps:
                tap(frame)
        if dst_machine is not None:
            # Located unicast, inlined from _route: one dict hit.
            nic = self._nics.get(dst_machine)
            delivered = nic is not None and nic.accept(frame)
        else:
            delivered = self._route(frame)
        if delivered:
            self.frames_delivered += 1
        else:
            self.frames_dropped += 1
        return delivered

    def _route(self, frame):
        # Unicast frames are handled inline by send(); only port-addressed
        # frames reach here.
        # Port-addressed frame: every station sees it; the admission
        # filters decide.  The listener index answers "who admits this
        # port" in one lookup — physically every station still receives
        # the frame (taps above model that), the index only replaces the
        # per-frame scan of every NIC's filter.  If several machines
        # listen on the same port (a multi-server service), rotate among
        # them like a hardware arbiter would.
        dest = frame.message.dest
        takers = self._listeners.get(dest)
        if not takers:
            return False
        if len(takers) == 1:
            return self._nics[takers[0]].accept(frame)
        start = self._round_robin.get(dest, 0)
        self._round_robin[dest] = start + 1
        return self._nics[takers[start % len(takers)]].accept(frame)

    def broadcast(self, src_nic, message):
        """Deliver a frame to every station's broadcast handler (LOCATE)."""
        frame = Frame(src=src_nic.address, dst_machine=None, message=message)
        self.frames_sent += 1
        self.broadcasts += 1
        for tap in self._taps:
            tap(frame)
        count = 0
        for addr, nic in sorted(self._nics.items()):
            if addr != src_nic.address and nic.accept_broadcast(frame):
                count += 1
        self.frames_delivered += count
        return count

    # ------------------------------------------------------------------
    # intruder instrumentation
    # ------------------------------------------------------------------

    def add_tap(self, callback, owner=None):
        """Register a promiscuous wiretap; it sees every frame verbatim.

        ``owner`` optionally ties the tap to a machine address so that
        :meth:`detach` of that machine also removes the tap (an intruder's
        wall-socket tap dies with its station).
        """
        self._taps.append(callback)
        if owner is not None:
            self._tap_owners.setdefault(owner, []).append(callback)

    def remove_tap(self, callback):
        """Remove a tap; a no-op if it is already gone (e.g. its owning
        machine detached first)."""
        if callback in self._taps:
            self._taps.remove(callback)
        for owner, taps in list(self._tap_owners.items()):
            if callback in taps:
                taps.remove(callback)
                if not taps:
                    del self._tap_owners[owner]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def reset_stats(self):
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.broadcasts = 0

    def stats(self):
        """Current wire counters as a dict (stable keys for benchmarks)."""
        return {
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_dropped": self.frames_dropped,
            "broadcasts": self.broadcasts,
        }

    def __repr__(self):
        return "SimNetwork(machines=%d, frames_sent=%d)" % (
            len(self._nics),
            self.frames_sent,
        )
