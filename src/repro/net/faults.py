"""Deterministic fault injection for every delivery discipline.

The paper's protocol is designed for a network where "messages can be
lost, duplicated, or corrupted" — yet until this module every simulated
wire delivered 100% of admitted frames.  A :class:`FaultPlan` is a
seeded, reproducible adversary-free fault model: per-frame decisions to
drop, duplicate, corrupt, delay, or reorder, drawn from one private RNG
in frame order, so the same seed over the same traffic produces the same
faults on any host.  That is what lets the DES benchmarks assert
determinism-by-double-run *with* loss, and what gives the at-least-once
retry layer (:mod:`repro.ipc.rpc`) something real to survive.

Fault semantics per discipline
------------------------------
* **drop** — the frame vanishes after admission.  The sender cannot
  tell: ``send`` still returns its admission verdict (exactly the
  admitted-then-lost contract queue overflow already has) and the loss
  shows up only in counters and as a missing reply.
* **duplicate** — the frame is delivered twice.  On the DES wire each
  copy gets its own arrival instant; elsewhere the copies are delivered
  back to back.
* **corrupt** — one bit of the *packed* frame is flipped, then the
  frame is re-parsed.  A frame that no longer parses is dropped (a NIC
  discards a bad checksum); one that parses is delivered corrupted —
  which is precisely the case capability ``check`` validation exists
  for.  ``corrupt_field="capability"`` aims the flip at the packed
  capability's validated fields — object, rights, check — the forgery-
  relevant threat; ``"frame"`` flips anywhere.
* **delay** — on the DES wire, ``delay_ms`` extra virtual milliseconds
  (scaled by a seeded factor in [0.5, 1.5)).  On the untimed
  disciplines a delayed frame is *held back* and re-injected behind the
  next frame through the plan — on a wire with no clock, lateness is
  observable only as overtaking.
* **reorder** — held back and re-injected behind the next frame, in
  every discipline.  A held frame with no successor is released by the
  next send, whenever that is; traffic that simply stops strands it
  (document-level caveat, the same as a frame delayed past the end of
  the world).

Per-link overrides: ``links`` maps a source machine address, or a
``(src, dst)`` pair (``dst`` as stamped on the frame, ``None`` for
port-addressed sends), to a :class:`FaultSpec` replacing the defaults
for frames on that link.

Partitions
----------
:meth:`sever` cuts a *directed* link outright: a severed link transmits
nothing — no drop roll, no hold-back, no counters besides
``partition_drops``.  ``sever(src=a)`` cuts all of ``a``'s egress,
``sever(dst=b)`` all ingress to ``b``, ``sever(a, b)`` just that
direction; :meth:`partition` cuts two machine groups apart (both ways by
default, one way with ``symmetric=False`` — the *asymmetric* partition
where requests arrive but replies vanish), :meth:`isolate` cuts one
machine off entirely.  :meth:`heal` / :meth:`heal_partition` /
:meth:`rejoin` undo exactly what their counterparts cut.  Severed-link
checks are pure set lookups so the healthy path pays nothing, and the
cuts bind at *send* time and again at *delivery* time — a frame already
in flight on the DES heap when the cut lands is lost too, exactly like
a wire yanked mid-transmission.

The plan is deliberately transport-agnostic: :meth:`apply` works on
simulator :class:`~repro.net.network.Frame` objects and
:meth:`apply_datagram` on raw UDP payloads, sharing the same decision
stream and counters.
"""

import random
import threading

from repro.core.capability import PORT_BYTES as _CAP_PORT_BYTES
from repro.net.message import Message

__all__ = ["FaultSpec", "FaultPlan", "LossyFBox", "faulty_sendto"]


class FaultSpec:
    """Per-link fault probabilities; all default to 0 (a perfect link)."""

    __slots__ = ("drop", "duplicate", "corrupt", "delay", "reorder")

    def __init__(self, drop=0.0, duplicate=0.0, corrupt=0.0, delay=0.0,
                 reorder=0.0):
        for name, p in (("drop", drop), ("duplicate", duplicate),
                        ("corrupt", corrupt), ("delay", delay),
                        ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise ValueError("%s probability %r outside [0, 1]" % (name, p))
        self.drop = drop
        self.duplicate = duplicate
        self.corrupt = corrupt
        self.delay = delay
        self.reorder = reorder

    @property
    def silent(self):
        """True when this spec can never fire (skip all RNG draws)."""
        return not (self.drop or self.duplicate or self.corrupt
                    or self.delay or self.reorder)

    def __repr__(self):
        return ("FaultSpec(drop=%g, duplicate=%g, corrupt=%g, delay=%g, "
                "reorder=%g)" % (self.drop, self.duplicate, self.corrupt,
                                 self.delay, self.reorder))


class FaultPlan:
    """One seeded fault schedule shared by a network's frames.

    Thread-safe: decisions are serialized under a lock (the socket
    transport sends from several threads).  Determinism holds whenever
    the *traffic order* is deterministic — true by construction on the
    single-threaded simulators, and exactly the property the DES
    double-run asserts.
    """

    def __init__(self, seed=0, drop=0.0, duplicate=0.0, corrupt=0.0,
                 delay=0.0, reorder=0.0, delay_ms=1.0,
                 corrupt_field="frame", links=None):
        if corrupt_field not in ("frame", "capability"):
            raise ValueError("corrupt_field must be 'frame' or 'capability'")
        if delay_ms < 0:
            raise ValueError("delay_ms cannot be negative")
        self.seed = seed
        self.default = FaultSpec(drop, duplicate, corrupt, delay, reorder)
        self.delay_ms = delay_ms
        self.corrupt_field = corrupt_field
        #: src address or (src, dst) -> FaultSpec; pair keys win.
        self.links = dict(links or {})
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # Frames held back by a reorder/untimed-delay decision, released
        # behind the next frame that passes through the plan.
        self._held = []
        # Directed cuts: (src, dst) severs one link, (src, None) all of
        # src's egress, (None, dst) all ingress to dst.  Mutated under
        # the lock; read lock-free (set membership is atomic under the
        # GIL and a momentarily stale verdict is indistinguishable from
        # the cut landing a frame earlier or later).
        self._severed = set()
        self.reset_stats()

    def reset_stats(self):
        self.frames_seen = 0
        self.injected_drops = 0
        self.injected_duplicates = 0
        self.injected_corruptions = 0
        self.corrupt_unparseable = 0
        self.injected_delays = 0
        self.injected_reorders = 0
        self.partition_drops = 0
        # "src->dst" -> {fault kind -> count}; sparse, only links where
        # a fault actually fired.
        self._by_link = {}

    def stats(self):
        """Fault counters as a dict (stable keys for benchmarks)."""
        return {
            "frames_seen": self.frames_seen,
            "injected_drops": self.injected_drops,
            "injected_duplicates": self.injected_duplicates,
            "injected_corruptions": self.injected_corruptions,
            "corrupt_unparseable": self.corrupt_unparseable,
            "injected_delays": self.injected_delays,
            "injected_reorders": self.injected_reorders,
            "partition_drops": self.partition_drops,
            "by_link": {link: dict(kinds)
                        for link, kinds in sorted(self._by_link.items())},
        }

    def _link_count(self, src, dst, kind):
        """Count one fault against its link (caller holds the lock)."""
        link = "%s->%s" % ("*" if src is None else src,
                           "*" if dst is None else dst)
        kinds = self._by_link.get(link)
        if kinds is None:
            kinds = self._by_link[link] = {}
        kinds[kind] = kinds.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------

    @property
    def has_partitions(self):
        """True when any link is currently severed (lock-free read)."""
        return bool(self._severed)

    def link_severed(self, src, dst):
        """True when ``src -> dst`` cannot transmit (lock-free read)."""
        severed = self._severed
        return ((src, dst) in severed or (src, None) in severed
                or (None, dst) in severed)

    def sever(self, src=None, dst=None):
        """Cut the directed link ``src -> dst``; ``None`` is a wildcard
        on that side (at least one side must be given)."""
        if src is None and dst is None:
            raise ValueError("sever() needs a src and/or a dst")
        with self._lock:
            self._severed.add((src, dst))

    def heal(self, src=None, dst=None):
        """Undo one :meth:`sever`; with no arguments, heal every cut."""
        with self._lock:
            if src is None and dst is None:
                self._severed.clear()
            else:
                self._severed.discard((src, dst))

    def partition(self, group_a, group_b, symmetric=True):
        """Sever every link from ``group_a`` to ``group_b`` (and back,
        unless ``symmetric=False`` — the asymmetric partition where one
        side's frames still arrive but the other's vanish)."""
        with self._lock:
            for a in group_a:
                for b in group_b:
                    self._severed.add((a, b))
                    if symmetric:
                        self._severed.add((b, a))

    def heal_partition(self, group_a, group_b):
        """Undo :meth:`partition` (either direction) for the two groups."""
        with self._lock:
            for a in group_a:
                for b in group_b:
                    self._severed.discard((a, b))
                    self._severed.discard((b, a))

    def isolate(self, machine):
        """Cut one machine off completely: all egress and all ingress."""
        with self._lock:
            self._severed.add((machine, None))
            self._severed.add((None, machine))

    def rejoin(self, machine):
        """Undo :meth:`isolate` plus any pairwise cuts touching the
        machine."""
        with self._lock:
            self._severed = {(s, d) for s, d in self._severed
                             if s != machine and d != machine}

    def note_partition_drop(self, src, dst):
        """Count one frame lost to a severed link (for delivery-time
        enforcement points that discover the cut outside the plan)."""
        with self._lock:
            self.partition_drops += 1
            self._link_count(src, dst, "partition")

    def _spec(self, src, dst):
        links = self.links
        if links:
            spec = links.get((src, dst))
            if spec is not None:
                return spec
            spec = links.get(src)
            if spec is not None:
                return spec
        return self.default

    # ------------------------------------------------------------------
    # simulator frames
    # ------------------------------------------------------------------

    def apply(self, frame, des=False):
        """Fault one frame; returns ``[(frame, extra_delay_seconds), ...]``.

        The list holds every frame to actually transmit *in order*: it
        may be empty (dropped, or held back), contain a duplicate pair,
        a corrupted replacement, and/or previously-held frames released
        behind this one.  ``extra_delay_seconds`` is nonzero only for
        DES-mode delay faults; the untimed disciplines receive 0.0 and
        model lateness by the hold-back reordering instead.
        """
        with self._lock:
            self.frames_seen += 1
            src, dst = frame.src, frame.dst_machine
            if self._severed and self.link_severed(src, dst):
                # A cut link transmits nothing: no fault rolls, and held
                # frames stay held (they release behind a frame that
                # actually reaches a live link).
                self.partition_drops += 1
                self._link_count(src, dst, "partition")
                return []
            spec = self._spec(src, dst)
            if spec.silent and not self._held:
                return [(frame, 0.0)]
            out = self._decide(frame, spec, des)
            if self._held and (out or not self._is_held(frame)):
                # Any frame actually going out drags the held backlog
                # onto the wire behind it.
                released = self._held
                self._held = []
                out.extend(released)
            return out

    def _is_held(self, frame):
        return any(f is frame for f, _ in self._held)

    def _decide(self, frame, spec, des):
        rng = self._rng
        src, dst = frame.src, frame.dst_machine
        if spec.drop and rng.random() < spec.drop:
            self.injected_drops += 1
            self._link_count(src, dst, "drops")
            return []
        if spec.corrupt and rng.random() < spec.corrupt:
            self.injected_corruptions += 1
            self._link_count(src, dst, "corruptions")
            corrupted = self._corrupt_message(frame.message)
            if corrupted is None:
                self.corrupt_unparseable += 1
                return []
            frame = frame._replace(message=corrupted)
        extra = 0.0
        if spec.delay and rng.random() < spec.delay:
            self.injected_delays += 1
            self._link_count(src, dst, "delays")
            if des:
                extra = self.delay_ms / 1000.0 * (0.5 + rng.random())
            else:
                self._held.append((frame, 0.0))
                return []
        copies = [(frame, extra)]
        if spec.duplicate and rng.random() < spec.duplicate:
            self.injected_duplicates += 1
            self._link_count(src, dst, "duplicates")
            if des:
                copies.append((frame, self.delay_ms / 1000.0 * rng.random()))
            else:
                copies.append((frame, 0.0))
        if spec.reorder and rng.random() < spec.reorder:
            self.injected_reorders += 1
            self._link_count(src, dst, "reorders")
            self._held.extend(copies)
            return []
        return copies

    def apply_broadcast(self, frame, des=False):
        """Fault one broadcast frame: drop, corrupt, duplicate, and (on
        the DES wire) delay only.  Broadcasts never enter the hold-back
        buffer — a LOCATE must not strand a unicast frame behind it, nor
        be re-dispatched down a unicast path later."""
        with self._lock:
            self.frames_seen += 1
            src = frame.src
            if self._severed and (src, None) in self._severed:
                # Only a full egress cut silences a broadcast at the
                # transmitter; pairwise cuts bind per station at
                # delivery time.
                self.partition_drops += 1
                self._link_count(src, None, "partition")
                return []
            spec = self._spec(src, None)
            if spec.silent:
                return [(frame, 0.0)]
            rng = self._rng
            if spec.drop and rng.random() < spec.drop:
                self.injected_drops += 1
                self._link_count(src, None, "drops")
                return []
            if spec.corrupt and rng.random() < spec.corrupt:
                self.injected_corruptions += 1
                self._link_count(src, None, "corruptions")
                corrupted = self._corrupt_message(frame.message)
                if corrupted is None:
                    self.corrupt_unparseable += 1
                    return []
                frame = frame._replace(message=corrupted)
            extra = 0.0
            if des and spec.delay and rng.random() < spec.delay:
                self.injected_delays += 1
                self._link_count(src, None, "delays")
                extra = self.delay_ms / 1000.0 * (0.5 + rng.random())
            out = [(frame, extra)]
            if spec.duplicate and rng.random() < spec.duplicate:
                self.injected_duplicates += 1
                self._link_count(src, None, "duplicates")
                dup_extra = extra
                if des:
                    dup_extra += self.delay_ms / 1000.0 * rng.random()
                out.append((frame, dup_extra))
            return out

    def _corrupt_message(self, message):
        """Flip one bit of the packed frame; None when it no longer parses."""
        try:
            raw = bytearray(message.pack())
        except Exception:
            return None
        self._flip(raw)
        try:
            return Message.unpack(bytes(raw))
        except Exception:
            return None

    def _flip(self, raw):
        rng = self._rng
        index = None
        if self.corrupt_field == "capability":
            # caplen lives at fixed header offset 38 (see message.py's
            # struct layout); aim inside the packed capability when the
            # frame carries one, else fall back to anywhere.  The flip
            # skips the capability's embedded 6 port bytes: the object
            # table validates (object, rights, check) and never the
            # port, so a port flip is routing noise — the forgery-
            # relevant region is everything after it, and targeting it
            # is what lets tests assert "a corrupted capability never
            # validates" as an invariant rather than a probability.
            caplen = int.from_bytes(raw[38:40], "big")
            if caplen > _CAP_PORT_BYTES:
                from repro.net.message import HEADER_BYTES

                index = (HEADER_BYTES + _CAP_PORT_BYTES
                         + rng.randrange(caplen - _CAP_PORT_BYTES))
        if index is None:
            index = rng.randrange(len(raw))
        raw[index] ^= 1 << rng.randrange(8)

    # ------------------------------------------------------------------
    # raw datagrams (the sockets transport)
    # ------------------------------------------------------------------

    def apply_datagram(self, raw, src=None, dst=None):
        """Fault one packed datagram; returns the list of payloads to
        actually transmit.  Corruption flips a bit without re-parsing
        (the receiving node's unpack is the checksum); delay and reorder
        both hold the datagram back behind the next send — a UDP wrapper
        has no timers to be late with."""
        with self._lock:
            self.frames_seen += 1
            if self._severed and self.link_severed(src, dst):
                self.partition_drops += 1
                self._link_count(src, dst, "partition")
                return []
            spec = self._spec(src, dst)
            held = None
            if self._held:
                held = [payload for payload, _ in self._held]
                self._held = []
            out = self._decide_datagram(raw, spec, src, dst)
            if held:
                out.extend(held)
            return out

    def _decide_datagram(self, raw, spec, src, dst):
        rng = self._rng
        if spec.drop and rng.random() < spec.drop:
            self.injected_drops += 1
            self._link_count(src, dst, "drops")
            return []
        if spec.corrupt and rng.random() < spec.corrupt:
            self.injected_corruptions += 1
            self._link_count(src, dst, "corruptions")
            flipped = bytearray(raw)
            self._flip(flipped)
            raw = bytes(flipped)
        out = [raw]
        if spec.duplicate and rng.random() < spec.duplicate:
            self.injected_duplicates += 1
            self._link_count(src, dst, "duplicates")
            out.append(raw)
        if spec.delay and rng.random() < spec.delay:
            self.injected_delays += 1
            self._link_count(src, dst, "delays")
            self._held.extend((payload, 0.0) for payload in out)
            return []
        if spec.reorder and rng.random() < spec.reorder:
            self.injected_reorders += 1
            self._link_count(src, dst, "reorders")
            self._held.extend((payload, 0.0) for payload in out)
            return []
        return out

    def __repr__(self):
        return "FaultPlan(seed=%r, default=%r, links=%d, seen=%d)" % (
            self.seed,
            self.default,
            len(self.links),
            self.frames_seen,
        )


def faulty_sendto(sock_sendto, plan):
    """Wrap a socket ``sendto`` so every datagram passes the plan first.

    The lossy seam for :class:`~repro.net.sockets.SocketNode`: the node
    swaps its transmit function for this wrapper when constructed with a
    ``faults=`` plan, so every egress path — single puts, aggregate
    carriers, buffered flushes — is faulted per *datagram*, exactly the
    unit a real network loses.
    """

    def sendto(raw, dst):
        sent = 0
        for payload in plan.apply_datagram(raw, dst=dst):
            sent = sock_sendto(payload, dst)
        return sent

    return sendto


class LossyFBox:
    """Deprecated-name guard: the lossy seam is :func:`faulty_sendto`.

    Kept so stale imports fail with a message instead of an
    AttributeError deep in a benchmark run.
    """

    def __init__(self, *a, **k):
        raise TypeError(
            "faults are injected per datagram via SocketNode(faults=plan) "
            "/ faulty_sendto, not by wrapping the FBox"
        )
