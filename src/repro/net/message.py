"""The standard Amoeba message format (§2.1, §2.2).

"The standard message format provides a place for one capability in the
header, typically for the object being operated on ... The header also
contains room for the operation code and some parameters."  With F-boxes
the header carries three port fields: destination (P), reply (G' before
the F-box, F(G') on the wire), and signature (S before, F(S) on).

The binary layout (big-endian) is::

    magic   2  b"AM"
    version 1
    flags   1  bit 0 = reply
    dest    6  put-port
    reply   6  get-port secret on egress; put-port on the wire
    signat  6  signature secret on egress; public image on the wire
    command 2  operation code (request) — echoed in replies
    status  2  reply status (0 = OK); 0 in requests
    offset  8  position parameter (file offset, etc.)
    size    4  size parameter
    caplen  2  length of the packed capability (0 if none)
    datalen 4  length of the data part
    cap     caplen bytes
    data    datalen bytes

Two construction disciplines share this one layout (see
``docs/PERFORMANCE.md``):

* the **untrusted** path — ``Message(...)``, ``copy()`` — runs the full
  ``__post_init__`` range checks, because the values may come from a
  hostile or buggy caller;
* the **trusted** path — ``unpack``, ``reply_to``, the F-box egress copy
  — skips them.  For ``unpack`` this is sound because the fixed header is
  decoded with width-limited struct codes (``H``/``Q``/``I``) and the
  ports with exact-length ``Port.from_bytes``, so every field is in range
  by construction; for the others the source message was already
  validated when it was built.
"""

import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.capability import Capability
from repro.core.ports import NULL_PORT, Port
from repro.errors import BadRequest

_MAGIC = b"AM"
_VERSION = 1
_FLAG_REPLY = 0x01
#: The capability area holds matrix-encrypted blobs (§2.4), not plaintext.
_FLAG_SEALED = 0x02

_FIXED = struct.Struct(">2sBB6s6s6sHHQIHI")

#: Serialized size of the fixed header, in bytes.
HEADER_BYTES = _FIXED.size


@dataclass
class Message:
    """One request or reply message.

    ``reply`` and ``signature`` hold *secrets* while the message is inside
    the sending process; the F-box replaces them with their one-way images
    on egress, so the wire never carries a get-port or signature secret.
    """

    dest: Port = NULL_PORT
    reply: Port = NULL_PORT
    signature: Port = NULL_PORT
    command: int = 0
    status: int = 0
    offset: int = 0
    size: int = 0
    capability: Optional[Capability] = None
    data: bytes = b""
    is_reply: bool = False
    #: Extra capabilities travelling in the data field (the paper: "users
    #: are free to put other capabilities in the data field as required").
    extra_caps: tuple = field(default_factory=tuple)
    #: §2.4 software protection: when non-empty, the capability area of
    #: the wire format carries this encrypted blob instead of plaintext
    #: capabilities; ``capability`` and ``extra_caps`` must then be empty.
    sealed_caps: bytes = b""

    def __post_init__(self):
        if not 0 <= self.command < (1 << 16):
            raise ValueError("command %d outside u16" % self.command)
        if not 0 <= self.status < (1 << 16):
            raise ValueError("status %d outside u16" % self.status)
        if not 0 <= self.offset < (1 << 64):
            raise ValueError("offset %d outside u64" % self.offset)
        if not 0 <= self.size < (1 << 32):
            raise ValueError("size %d outside u32" % self.size)
        if isinstance(self.data, str):
            self.data = self.data.encode("utf-8")

    def pack(self):
        """Serialise to wire bytes in a single pass.

        The frame is assembled into one preallocated buffer: the fixed
        header is packed in place and the capability/payload sections are
        spliced in, with no intermediate ``bytes`` joins.
        """
        flags = _FLAG_REPLY if self.is_reply else 0
        if self.sealed_caps:
            if self.capability is not None or self.extra_caps:
                raise ValueError(
                    "a sealed message cannot also carry plaintext capabilities"
                )
            flags |= _FLAG_SEALED
            cap_bytes = self.sealed_caps
        else:
            cap_bytes = self.capability.pack() if self.capability else b""
        caplen = len(cap_bytes)
        data = self.data
        extra_caps = self.extra_caps
        if extra_caps:
            packed_extras = [cap.pack() for cap in extra_caps]
            datalen = 1 + sum(len(c) + 2 for c in packed_extras) + len(data)
        else:
            packed_extras = ()
            datalen = 1 + len(data)
        buf = bytearray(HEADER_BYTES + caplen + datalen)
        _FIXED.pack_into(
            buf,
            0,
            _MAGIC,
            _VERSION,
            flags,
            self.dest.to_bytes(),
            self.reply.to_bytes(),
            self.signature.to_bytes(),
            self.command,
            self.status,
            self.offset,
            self.size,
            caplen,
            datalen,
        )
        pos = HEADER_BYTES
        buf[pos:pos + caplen] = cap_bytes
        pos += caplen
        buf[pos] = len(extra_caps)
        pos += 1
        for packed in packed_extras:
            clen = len(packed)
            buf[pos] = clen >> 8
            buf[pos + 1] = clen & 0xFF
            pos += 2
            buf[pos:pos + clen] = packed
            pos += clen
        buf[pos:] = data
        return bytes(buf)

    @classmethod
    def unpack(cls, raw):
        """Parse wire bytes; raises :class:`BadRequest` on framing errors."""
        if len(raw) < HEADER_BYTES:
            raise BadRequest("message truncated at %d bytes" % len(raw))
        (
            magic,
            version,
            flags,
            dest,
            reply,
            signature,
            command,
            status,
            offset,
            size,
            caplen,
            datalen,
        ) = _FIXED.unpack_from(raw)
        if magic != _MAGIC:
            raise BadRequest("bad magic %r" % magic)
        if version != _VERSION:
            raise BadRequest("unsupported message version %d" % version)
        if len(raw) != HEADER_BYTES + caplen + datalen:
            raise BadRequest(
                "length mismatch: header says %d, frame is %d"
                % (HEADER_BYTES + caplen + datalen, len(raw))
            )
        cap_bytes = raw[HEADER_BYTES:HEADER_BYTES + caplen]
        payload = raw[HEADER_BYTES + caplen:]
        sealed_caps = b""
        capability = None
        if flags & _FLAG_SEALED:
            sealed_caps = bytes(cap_bytes)
        elif caplen:
            capability = Capability.unpack(cap_bytes)
        n_extra = payload[0] if payload else 0
        pos = 1
        extra_caps = []
        for _ in range(n_extra):
            if pos + 2 > len(payload):
                raise BadRequest("truncated extra capability list")
            clen = int.from_bytes(payload[pos:pos + 2], "big")
            pos += 2
            if pos + clen > len(payload):
                raise BadRequest("truncated extra capability")
            extra_caps.append(Capability.unpack(payload[pos:pos + clen]))
            pos += clen
        data = payload[pos:]
        return cls._trusted(
            dest=Port.from_bytes(dest),
            reply=Port.from_bytes(reply),
            signature=Port.from_bytes(signature),
            command=command,
            status=status,
            offset=offset,
            size=size,
            capability=capability,
            data=bytes(data),
            is_reply=bool(flags & _FLAG_REPLY),
            extra_caps=tuple(extra_caps),
            sealed_caps=sealed_caps,
        )

    # ------------------------------------------------------------------
    # trusted fast paths (see module docstring)
    # ------------------------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        dest=NULL_PORT,
        reply=NULL_PORT,
        signature=NULL_PORT,
        command=0,
        status=0,
        offset=0,
        size=0,
        capability=None,
        data=b"",
        is_reply=False,
        extra_caps=(),
        sealed_caps=b"",
    ):
        """Build a message without the ``__post_init__`` range checks.

        Callers must guarantee every field is already in range (wire
        decoding does so structurally; other callers start from a
        validated message).
        """
        self = cls.__new__(cls)
        d = self.__dict__
        d["dest"] = dest
        d["reply"] = reply
        d["signature"] = signature
        d["command"] = command
        d["status"] = status
        d["offset"] = offset
        d["size"] = size
        d["capability"] = capability
        d["data"] = data
        d["is_reply"] = is_reply
        d["extra_caps"] = extra_caps
        d["sealed_caps"] = sealed_caps
        return self

    def _evolve(self, **changes):
        """A trusted shallow copy: ``copy()`` without re-validation.

        For internal paths (F-box egress, ``trans``, reply signing) whose
        replacement values are Ports or already-validated fields.
        """
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__ = merged = self.__dict__ | changes
        if len(merged) != len(self.__dict__):
            # A stray key grew the dict: some change is not a field.
            raise TypeError(
                "unknown message field(s): %s"
                % ", ".join(sorted(set(changes) - set(self.__dict__)))
            )
        return clone

    def copy(self, **changes):
        """A (possibly modified) copy — the intruder toolkit's bread and
        butter.  Runs full validation, since the changes may be hostile."""
        return replace(self, **changes)

    def reply_to(self, **changes):
        """Build a reply template addressed to this request's reply port.

        The reply port in a received request is already the one-way image
        F(G'), i.e. a put-port the responder can use directly.  This is a
        trusted path: the request was validated on construction and the
        changes come from server code, so only the cheap str coercion of
        ``data`` is kept.
        """
        # _REPLY_DEFAULTS is snapshotted from a real default Message at
        # import time, so a field added to the dataclass later is
        # automatically present here with its declared default.
        fields = dict(_REPLY_DEFAULTS)
        fields["dest"] = self.reply
        fields["command"] = self.command
        if changes:
            fields.update(changes)
            if len(fields) != len(_REPLY_DEFAULTS):
                # A stray key grew the dict: a typo'd kwarg, which the
                # old Message(**fields) path would have rejected too.
                raise TypeError(
                    "unknown message field(s): %s"
                    % ", ".join(sorted(set(changes) - set(_REPLY_DEFAULTS)))
                )
            # The numeric fields are the one place handler-supplied values
            # enter this trusted path; guard them so a buggy handler gets
            # a ValueError here (inside the dispatch loop's try) instead
            # of a corrupt reply or a struct.error after it.  All three
            # checks are skipped in the all-defaults hot case.
            command = fields["command"]
            if command and not 0 <= command < (1 << 16):
                raise ValueError("command %d outside u16" % command)
            status = fields["status"]
            if status and not 0 <= status < (1 << 16):
                raise ValueError("status %d outside u16" % status)
            offset = fields["offset"]
            if offset and not 0 <= offset < (1 << 64):
                raise ValueError("offset %d outside u64" % offset)
            size = fields["size"]
            if size and not 0 <= size < (1 << 32):
                raise ValueError("size %d outside u32" % size)
            data = fields["data"]
            if isinstance(data, str):
                fields["data"] = data.encode("utf-8")
        reply = Message.__new__(Message)
        reply.__dict__ = fields
        return reply

    def __repr__(self):
        kind = "reply" if self.is_reply else "request"
        return "Message(%s, dest=%012x, cmd=%d, status=%d, %d data bytes)" % (
            kind,
            self.dest.value,
            self.command,
            self.status,
            len(self.data),
        )


#: The canonical field defaults for a reply template (see reply_to),
#: taken from an actual default-constructed Message so the set of fields
#: can never drift from the dataclass definition.
_REPLY_DEFAULTS = dict(Message().__dict__)
_REPLY_DEFAULTS["is_reply"] = True
