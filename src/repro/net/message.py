"""The standard Amoeba message format (§2.1, §2.2).

"The standard message format provides a place for one capability in the
header, typically for the object being operated on ... The header also
contains room for the operation code and some parameters."  With F-boxes
the header carries three port fields: destination (P), reply (G' before
the F-box, F(G') on the wire), and signature (S before, F(S) on).

The binary layout (big-endian) is::

    magic   2  b"AM"
    version 1
    flags   1  bit 0 = reply
    dest    6  put-port
    reply   6  get-port secret on egress; put-port on the wire
    signat  6  signature secret on egress; public image on the wire
    command 2  operation code (request) — echoed in replies
    status  2  reply status (0 = OK); 0 in requests
    offset  8  position parameter (file offset, etc.)
    size    4  size parameter
    caplen  2  length of the packed capability (0 if none)
    datalen 4  length of the data part
    cap     caplen bytes
    data    datalen bytes

Two construction disciplines share this one layout (see
``docs/PERFORMANCE.md``):

* the **untrusted** path — ``Message(...)``, ``copy()`` — runs the full
  ``__post_init__`` range checks, because the values may come from a
  hostile or buggy caller;
* the **trusted** path — ``unpack``, ``reply_to``, the F-box egress copy
  — skips them.  For ``unpack`` this is sound because the fixed header is
  decoded with width-limited struct codes (``H``/``Q``/``I``) and the
  ports with exact-length interned wire decoding, so every field is in
  range by construction; for the others the source message was already
  validated when it was built.

``unpack`` is additionally **lazy**: it validates the *entire* frame
eagerly (magic, version, lengths, capability and extra-cap framing — all
arithmetic, no object construction) and decodes only the header fields;
the body — ``capability``, ``extra_caps``, ``data``, ``sealed_caps`` —
stays raw bytes until first touched.  A frame that is only routed,
screened, or replied to from its header never pays ``Capability.unpack``
or a payload copy.  Because validation is eager, every error a frame can
produce is raised by ``unpack`` itself; materialization cannot fail.
"""

import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.capability import Capability, validate_packed_length
from repro.core.ports import NULL_PORT, Port
from repro.errors import BadRequest

_MAGIC = b"AM"
_VERSION = 1
_FLAG_REPLY = 0x01
#: The capability area holds matrix-encrypted blobs (§2.4), not plaintext.
_FLAG_SEALED = 0x02

_FIXED = struct.Struct(">2sBB6s6s6sHHQIHI")

#: Serialized size of the fixed header, in bytes.
HEADER_BYTES = _FIXED.size

# The header splits at the destination port: everything up to and
# including ``dest`` (magic, version, flags, dest) is constant for every
# message a client sends to one service, while everything after it
# (reply, signature, command, ...) varies per transaction.  pack()
# therefore prebuilds the constant prefix once per (dest, flags) pair
# and reuses it for every later send to that destination — and since
# :meth:`Port.to_bytes` memoizes its wire form, the cache key is the
# *same* bytes object on every repeat send, so its hash is computed once
# (CPython caches bytes hashes) and the probe is a single dict hit.
_PREFIX = struct.Struct(">2sBB6s")
_TAIL = struct.Struct(">6s6sHHQIHI")
_PREFIX_BYTES = _PREFIX.size

# One template dict per flags value (flags is 2 bits); bounded so a
# client sweeping millions of distinct destinations cannot grow them
# without limit — on overflow the dict is dropped wholesale and warms
# back up (templates are 10-byte values; rebuilding one is one
# struct call).
_TEMPLATE_LIMIT = 1024
_TEMPLATES = tuple({} for _ in range(4))


@dataclass
class Message:
    """One request or reply message.

    ``reply`` and ``signature`` hold *secrets* while the message is inside
    the sending process; the F-box replaces them with their one-way images
    on egress, so the wire never carries a get-port or signature secret.
    """

    dest: Port = NULL_PORT
    reply: Port = NULL_PORT
    signature: Port = NULL_PORT
    command: int = 0
    status: int = 0
    offset: int = 0
    size: int = 0
    capability: Optional[Capability] = None
    data: bytes = b""
    is_reply: bool = False
    #: Extra capabilities travelling in the data field (the paper: "users
    #: are free to put other capabilities in the data field as required").
    extra_caps: tuple = field(default_factory=tuple)
    #: §2.4 software protection: when non-empty, the capability area of
    #: the wire format carries this encrypted blob instead of plaintext
    #: capabilities; ``capability`` and ``extra_caps`` must then be empty.
    sealed_caps: bytes = b""

    def __post_init__(self):
        if not 0 <= self.command < (1 << 16):
            raise ValueError("command %d outside u16" % self.command)
        if not 0 <= self.status < (1 << 16):
            raise ValueError("status %d outside u16" % self.status)
        if not 0 <= self.offset < (1 << 64):
            raise ValueError("offset %d outside u64" % self.offset)
        if not 0 <= self.size < (1 << 32):
            raise ValueError("size %d outside u32" % self.size)
        if isinstance(self.data, str):
            self.data = self.data.encode("utf-8")

    def pack(self):
        """Serialise to wire bytes.

        The header is assembled from a per-destination *template*: the
        (magic, version, flags, dest) prefix is prebuilt once per
        destination and reused on every later send to the same port, so
        only the per-transaction tail is packed each time.  The frame is
        then a single ``bytes.join`` — measured faster than packing into
        a preallocated buffer, whose slice splices cost more than the
        joins they avoid.
        """
        flags = _FLAG_REPLY if self.is_reply else 0
        if self.sealed_caps:
            if self.capability is not None or self.extra_caps:
                raise ValueError(
                    "a sealed message cannot also carry plaintext capabilities"
                )
            flags |= _FLAG_SEALED
            cap_bytes = self.sealed_caps
        else:
            cap_bytes = self.capability.pack() if self.capability else b""
        caplen = len(cap_bytes)
        data = self.data
        extra_caps = self.extra_caps
        dest_wire = self.dest.to_bytes()
        templates = _TEMPLATES[flags]
        prefix = templates.get(dest_wire)
        if prefix is None:
            if len(templates) >= _TEMPLATE_LIMIT:
                templates.clear()
            prefix = templates[dest_wire] = _PREFIX.pack(
                _MAGIC, _VERSION, flags, dest_wire
            )
        if extra_caps:
            packed_extras = [cap.pack() for cap in extra_caps]
            datalen = 1 + sum(len(c) + 2 for c in packed_extras) + len(data)
            body = [bytes((len(extra_caps),))]
            for packed in packed_extras:
                clen = len(packed)
                body.append(bytes((clen >> 8, clen & 0xFF)))
                body.append(packed)
            body.append(data)
            tail = _TAIL.pack(
                self.reply.to_bytes(), self.signature.to_bytes(),
                self.command, self.status, self.offset, self.size,
                caplen, datalen,
            )
            return b"".join((prefix, tail, cap_bytes, *body))
        tail = _TAIL.pack(
            self.reply.to_bytes(), self.signature.to_bytes(),
            self.command, self.status, self.offset, self.size,
            caplen, 1 + len(data),
        )
        return b"".join((prefix, tail, cap_bytes, b"\x00", data))

    @classmethod
    def unpack(cls, raw):
        """Parse wire bytes; raises :class:`BadRequest` on framing errors.

        Validation is eager — a malformed frame raises here, never later
        — but the body is decoded lazily: the returned message is a
        :class:`_WireMessage` whose ``capability`` / ``extra_caps`` /
        ``data`` / ``sealed_caps`` are materialized from the raw frame on
        first access.  Header fields (ports, command, status, offset,
        size, is_reply) are always decoded immediately, since routing and
        admission read them on every frame.
        """
        if len(raw) < HEADER_BYTES:
            raise BadRequest("message truncated at %d bytes" % len(raw))
        (
            magic,
            version,
            flags,
            dest,
            reply,
            signature,
            command,
            status,
            offset,
            size,
            caplen,
            datalen,
        ) = _FIXED.unpack_from(raw)
        if magic != _MAGIC:
            raise BadRequest("bad magic %r" % magic)
        if version != _VERSION:
            raise BadRequest("unsupported message version %d" % version)
        if len(raw) != HEADER_BYTES + caplen + datalen:
            raise BadRequest(
                "length mismatch: header says %d, frame is %d"
                % (HEADER_BYTES + caplen + datalen, len(raw))
            )
        if type(raw) is not bytes:
            raw = bytes(raw)
        if caplen and not flags & _FLAG_SEALED:
            validate_packed_length(raw, HEADER_BYTES, caplen)
        body = HEADER_BYTES + caplen
        if datalen:
            n_extra = raw[body]
            if n_extra:
                pos = body + 1
                end = body + datalen
                for _ in range(n_extra):
                    if pos + 2 > end:
                        raise BadRequest("truncated extra capability list")
                    clen = (raw[pos] << 8) | raw[pos + 1]
                    pos += 2
                    if pos + clen > end:
                        raise BadRequest("truncated extra capability")
                    validate_packed_length(raw, pos, clen)
                    pos += clen
        self = _WireMessage.__new__(_WireMessage)
        d = self.__dict__
        d["dest"] = Port.from_wire(dest)
        d["reply"] = Port.from_wire(reply)
        d["signature"] = Port.from_wire(signature)
        d["command"] = command
        d["status"] = status
        d["offset"] = offset
        d["size"] = size
        d["is_reply"] = True if flags & _FLAG_REPLY else False
        d["_wire"] = (raw, caplen, flags)
        return self

    # ------------------------------------------------------------------
    # trusted fast paths (see module docstring)
    # ------------------------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        dest=NULL_PORT,
        reply=NULL_PORT,
        signature=NULL_PORT,
        command=0,
        status=0,
        offset=0,
        size=0,
        capability=None,
        data=b"",
        is_reply=False,
        extra_caps=(),
        sealed_caps=b"",
    ):
        """Build a message without the ``__post_init__`` range checks.

        Callers must guarantee every field is already in range (wire
        decoding does so structurally; other callers start from a
        validated message).
        """
        self = cls.__new__(cls)
        d = self.__dict__
        d["dest"] = dest
        d["reply"] = reply
        d["signature"] = signature
        d["command"] = command
        d["status"] = status
        d["offset"] = offset
        d["size"] = size
        d["capability"] = capability
        d["data"] = data
        d["is_reply"] = is_reply
        d["extra_caps"] = extra_caps
        d["sealed_caps"] = sealed_caps
        return self

    def _evolve(self, **changes):
        """A trusted shallow copy: ``copy()`` without re-validation.

        For internal paths (F-box egress, ``trans``, reply signing) whose
        replacement values are Ports or already-validated fields.
        """
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__ = merged = self.__dict__ | changes
        if len(merged) != len(self.__dict__):
            # A stray key grew the dict: some change is not a field.
            raise TypeError(
                "unknown message field(s): %s"
                % ", ".join(sorted(set(changes) - set(self.__dict__)))
            )
        return clone

    def copy(self, **changes):
        """A (possibly modified) copy — the intruder toolkit's bread and
        butter.  Runs full validation, since the changes may be hostile."""
        return replace(self, **changes)

    def reply_to(self, **changes):
        """Build a reply template addressed to this request's reply port.

        The reply port in a received request is already the one-way image
        F(G'), i.e. a put-port the responder can use directly.  This is a
        trusted path: the request was validated on construction and the
        changes come from server code, so only the cheap str coercion of
        ``data`` is kept.
        """
        # _REPLY_DEFAULTS is snapshotted from a real default Message at
        # import time, so a field added to the dataclass later is
        # automatically present here with its declared default.
        fields = dict(_REPLY_DEFAULTS)
        fields["dest"] = self.reply
        fields["command"] = self.command
        if changes:
            fields.update(changes)
            if len(fields) != len(_REPLY_DEFAULTS):
                # A stray key grew the dict: a typo'd kwarg, which the
                # old Message(**fields) path would have rejected too.
                raise TypeError(
                    "unknown message field(s): %s"
                    % ", ".join(sorted(set(changes) - set(_REPLY_DEFAULTS)))
                )
            # The numeric fields are the one place handler-supplied values
            # enter this trusted path; guard them so a buggy handler gets
            # a ValueError here (inside the dispatch loop's try) instead
            # of a corrupt reply or a struct.error after it.  All three
            # checks are skipped in the all-defaults hot case.
            command = fields["command"]
            if command and not 0 <= command < (1 << 16):
                raise ValueError("command %d outside u16" % command)
            status = fields["status"]
            if status and not 0 <= status < (1 << 16):
                raise ValueError("status %d outside u16" % status)
            offset = fields["offset"]
            if offset and not 0 <= offset < (1 << 64):
                raise ValueError("offset %d outside u64" % offset)
            size = fields["size"]
            if size and not 0 <= size < (1 << 32):
                raise ValueError("size %d outside u32" % size)
            data = fields["data"]
            if isinstance(data, str):
                fields["data"] = data.encode("utf-8")
        reply = Message.__new__(Message)
        reply.__dict__ = fields
        return reply

    def __eq__(self, other):
        # Field-by-field instead of the dataclass-generated version so a
        # lazily-decoded _WireMessage compares equal to the plain Message
        # it encodes (dataclass __eq__ requires identical classes).
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.dest == other.dest
            and self.reply == other.reply
            and self.signature == other.signature
            and self.command == other.command
            and self.status == other.status
            and self.offset == other.offset
            and self.size == other.size
            and self.is_reply == other.is_reply
            and self.data == other.data
            and self.capability == other.capability
            and self.extra_caps == other.extra_caps
            and self.sealed_caps == other.sealed_caps
        )

    __hash__ = None  # mutable, like every dataclass with eq and no frozen

    def __repr__(self):
        kind = "reply" if self.is_reply else "request"
        return "Message(%s, dest=%012x, cmd=%d, status=%d, %d data bytes)" % (
            kind,
            self.dest.value,
            self.command,
            self.status,
            len(self.data),
        )


class _LazyBody:
    """Non-data descriptor for one lazily-decoded body field.

    First access materializes the whole body (all four fields at once —
    they share one parse of the raw frame) into the instance ``__dict__``,
    which then shadows the descriptor, so every later read is a plain
    attribute hit.  Being a non-data descriptor also means assignment
    (``message.data = ...``) just writes the instance dict, exactly like
    a plain Message.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __get__(self, obj, owner=None):
        if obj is None:
            return self
        obj._materialize_body()
        return obj.__dict__[self.name]


class _WireMessage(Message):
    """A message decoded from the wire with its body still in raw bytes.

    Built only by :meth:`Message.unpack`, which has already validated the
    complete frame — so materialization below is straight-line decoding
    that cannot raise.  ``_wire`` in the instance dict holds
    ``(raw_frame, caplen, flags)`` until the first body access.  The
    in-range guarantee of the trusted constructor holds unchanged: every
    field comes from a width-limited slice of the validated frame.
    """

    capability = _LazyBody("capability")
    extra_caps = _LazyBody("extra_caps")
    data = _LazyBody("data")
    sealed_caps = _LazyBody("sealed_caps")

    def _materialize_body(self):
        # Fields already in the instance dict are *writes* (assignment on
        # a still-lazy message lands there, shadowing the descriptor) and
        # must win over the frame's decoded values.
        d = self.__dict__
        wire = d.get("_wire")
        if wire is None:
            return
        raw, caplen, flags = wire
        body = HEADER_BYTES + caplen
        if flags & _FLAG_SEALED:
            d.setdefault("sealed_caps", raw[HEADER_BYTES:body])
            d.setdefault("capability", None)
        else:
            d.setdefault("sealed_caps", b"")
            if "capability" not in d:
                d["capability"] = (
                    Capability.unpack(raw[HEADER_BYTES:body]) if caplen else None
                )
        if len(raw) == body:
            d.setdefault("extra_caps", ())
            d.setdefault("data", b"")
        else:
            n_extra = raw[body]
            pos = body + 1
            if n_extra:
                caps = [] if "extra_caps" not in d else None
                for _ in range(n_extra):
                    clen = (raw[pos] << 8) | raw[pos + 1]
                    pos += 2
                    if caps is not None:
                        caps.append(Capability.unpack(raw[pos:pos + clen]))
                    pos += clen
                if caps is not None:
                    d["extra_caps"] = tuple(caps)
            else:
                d.setdefault("extra_caps", ())
            d.setdefault("data", raw[pos:])
        d.pop("_wire", None)

    def _evolve(self, **changes):
        # The base _evolve merges into __dict__ and treats any key growth
        # as a typo'd field; a still-lazy body field is absent from the
        # dict, so materialize first when a change names one.  Changes
        # confined to header fields (the F-box, trans) stay lazy, and the
        # clone shares the immutable raw frame.
        if changes and not changes.keys() <= self.__dict__.keys():
            self._materialize_body()
        return super()._evolve(**changes)


#: The canonical field defaults for a reply template (see reply_to),
#: taken from an actual default-constructed Message so the set of fields
#: can never drift from the dataclass definition.
_REPLY_DEFAULTS = dict(Message().__dict__)
_REPLY_DEFAULTS["is_reply"] = True
