"""The standard Amoeba message format (§2.1, §2.2).

"The standard message format provides a place for one capability in the
header, typically for the object being operated on ... The header also
contains room for the operation code and some parameters."  With F-boxes
the header carries three port fields: destination (P), reply (G' before
the F-box, F(G') on the wire), and signature (S before, F(S) on).

The binary layout (big-endian) is::

    magic   2  b"AM"
    version 1
    flags   1  bit 0 = reply
    dest    6  put-port
    reply   6  get-port secret on egress; put-port on the wire
    signat  6  signature secret on egress; public image on the wire
    command 2  operation code (request) — echoed in replies
    status  2  reply status (0 = OK); 0 in requests
    offset  8  position parameter (file offset, etc.)
    size    4  size parameter
    caplen  2  length of the packed capability (0 if none)
    datalen 4  length of the data part
    cap     caplen bytes
    data    datalen bytes
"""

import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.capability import Capability
from repro.core.ports import NULL_PORT, Port
from repro.errors import BadRequest

_MAGIC = b"AM"
_VERSION = 1
_FLAG_REPLY = 0x01
#: The capability area holds matrix-encrypted blobs (§2.4), not plaintext.
_FLAG_SEALED = 0x02

_FIXED = struct.Struct(">2sBB6s6s6sHHQIHI")

#: Serialized size of the fixed header, in bytes.
HEADER_BYTES = _FIXED.size


@dataclass
class Message:
    """One request or reply message.

    ``reply`` and ``signature`` hold *secrets* while the message is inside
    the sending process; the F-box replaces them with their one-way images
    on egress, so the wire never carries a get-port or signature secret.
    """

    dest: Port = NULL_PORT
    reply: Port = NULL_PORT
    signature: Port = NULL_PORT
    command: int = 0
    status: int = 0
    offset: int = 0
    size: int = 0
    capability: Optional[Capability] = None
    data: bytes = b""
    is_reply: bool = False
    #: Extra capabilities travelling in the data field (the paper: "users
    #: are free to put other capabilities in the data field as required").
    extra_caps: tuple = field(default_factory=tuple)
    #: §2.4 software protection: when non-empty, the capability area of
    #: the wire format carries this encrypted blob instead of plaintext
    #: capabilities; ``capability`` and ``extra_caps`` must then be empty.
    sealed_caps: bytes = b""

    def __post_init__(self):
        if not 0 <= self.command < (1 << 16):
            raise ValueError("command %d outside u16" % self.command)
        if not 0 <= self.status < (1 << 16):
            raise ValueError("status %d outside u16" % self.status)
        if not 0 <= self.offset < (1 << 64):
            raise ValueError("offset %d outside u64" % self.offset)
        if not 0 <= self.size < (1 << 32):
            raise ValueError("size %d outside u32" % self.size)
        if isinstance(self.data, str):
            self.data = self.data.encode("utf-8")

    def pack(self):
        """Serialise to wire bytes."""
        flags = _FLAG_REPLY if self.is_reply else 0
        if self.sealed_caps:
            if self.capability is not None or self.extra_caps:
                raise ValueError(
                    "a sealed message cannot also carry plaintext capabilities"
                )
            flags |= _FLAG_SEALED
            cap_bytes = self.sealed_caps
        else:
            cap_bytes = self.capability.pack() if self.capability else b""
        extra = b"".join(
            len(c := cap.pack()).to_bytes(2, "big") + c for cap in self.extra_caps
        )
        payload = (
            len(self.extra_caps).to_bytes(1, "big") + extra + self.data
            if self.extra_caps
            else b"\x00" + self.data
        )
        head = _FIXED.pack(
            _MAGIC,
            _VERSION,
            flags,
            self.dest.to_bytes(),
            self.reply.to_bytes(),
            self.signature.to_bytes(),
            self.command,
            self.status,
            self.offset,
            self.size,
            len(cap_bytes),
            len(payload),
        )
        return head + cap_bytes + payload

    @classmethod
    def unpack(cls, raw):
        """Parse wire bytes; raises :class:`BadRequest` on framing errors."""
        if len(raw) < HEADER_BYTES:
            raise BadRequest("message truncated at %d bytes" % len(raw))
        (
            magic,
            version,
            flags,
            dest,
            reply,
            signature,
            command,
            status,
            offset,
            size,
            caplen,
            datalen,
        ) = _FIXED.unpack_from(raw)
        if magic != _MAGIC:
            raise BadRequest("bad magic %r" % magic)
        if version != _VERSION:
            raise BadRequest("unsupported message version %d" % version)
        if len(raw) != HEADER_BYTES + caplen + datalen:
            raise BadRequest(
                "length mismatch: header says %d, frame is %d"
                % (HEADER_BYTES + caplen + datalen, len(raw))
            )
        cap_bytes = raw[HEADER_BYTES:HEADER_BYTES + caplen]
        payload = raw[HEADER_BYTES + caplen:]
        sealed_caps = b""
        capability = None
        if flags & _FLAG_SEALED:
            sealed_caps = bytes(cap_bytes)
        elif caplen:
            capability = Capability.unpack(cap_bytes)
        n_extra = payload[0] if payload else 0
        pos = 1
        extra_caps = []
        for _ in range(n_extra):
            if pos + 2 > len(payload):
                raise BadRequest("truncated extra capability list")
            clen = int.from_bytes(payload[pos:pos + 2], "big")
            pos += 2
            if pos + clen > len(payload):
                raise BadRequest("truncated extra capability")
            extra_caps.append(Capability.unpack(payload[pos:pos + clen]))
            pos += clen
        data = payload[pos:]
        return cls(
            dest=Port.from_bytes(dest),
            reply=Port.from_bytes(reply),
            signature=Port.from_bytes(signature),
            command=command,
            status=status,
            offset=offset,
            size=size,
            capability=capability,
            data=bytes(data),
            is_reply=bool(flags & _FLAG_REPLY),
            extra_caps=tuple(extra_caps),
            sealed_caps=sealed_caps,
        )

    def copy(self, **changes):
        """A (possibly modified) copy — the intruder toolkit's bread and
        butter, and how the F-box emits transformed messages without
        mutating the sender's original."""
        return replace(self, **changes)

    def reply_to(self, **changes):
        """Build a reply template addressed to this request's reply port.

        The reply port in a received request is already the one-way image
        F(G'), i.e. a put-port the responder can use directly.
        """
        fields = dict(
            dest=self.reply,
            reply=NULL_PORT,
            signature=NULL_PORT,
            command=self.command,
            status=0,
            is_reply=True,
        )
        fields.update(changes)
        return Message(**fields)

    def __repr__(self):
        kind = "reply" if self.is_reply else "request"
        return "Message(%s, dest=%012x, cmd=%d, status=%d, %d data bytes)" % (
            kind,
            self.dest.value,
            self.command,
            self.status,
            len(self.data),
        )
