"""Network substrate: simulated LAN, F-boxes, NICs, and intruders.

The simulator reproduces the paper's threat model exactly: the wire is a
broadcast medium an intruder can tap, source addresses are stamped by the
network and cannot be forged (§2.4's assumption), and every NIC sends and
receives through an F-box that one-ways the reply and signature ports on
egress and admits only ports for which a GET was done (§2.2, Fig. 1).
"""

from repro.net.fbox import FBox
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import Frame, SimNetwork
from repro.net.nic import Nic
from repro.net.sched import EventLoop

__all__ = [
    "EventLoop",
    "FBox",
    "Frame",
    "Intruder",
    "Message",
    "Nic",
    "SimNetwork",
]
