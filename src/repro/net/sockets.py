"""A real UDP transport with the same station API as the simulator.

The reproduction hint for this paper is "hashlib and sockets": everything
in the library runs over the in-process :class:`~repro.net.network.SimNetwork`
(where the threat model is explicit and deterministic), and over this
module's genuine UDP datagrams on localhost, so the RPC layer can be
exercised end to end across OS processes.

A :class:`SocketNode` mirrors the :class:`~repro.net.nic.Nic` interface —
``listen`` / ``serve`` / ``put`` / ``poll`` — with the F-box applied in
software on egress.  The "unforgeable source address" is the UDP source
address reported by ``recvfrom``; adequate on a loopback interface, and
the simulator remains the reference for security experiments.
"""

import queue
import socket
import threading
from collections import deque

from repro.core.ports import as_port
from repro.net.fbox import FBox
from repro.net.message import Message

#: Generous datagram cap: a capability-bearing message is well under 1 KiB,
#: file transfers chunk themselves beneath this.
MAX_DATAGRAM = 60000


class SocketNode:
    """One station on a real UDP network.

    Concurrency notes (the pump thread receives while any number of
    client threads send):

    * **Admission is a lock-free snapshot.**  ``_admission`` maps wire
      port → sink (a ``queue.Queue`` for client GETs, a callable for
      server GETs) and is *replaced wholesale* — never mutated — under
      ``_lock`` by listen/serve/unlisten.  Readers (the pump thread's
      per-datagram lookup, ``poll_wire``) just read the attribute: no
      lock round-trip on the per-datagram path.
    * **Peers are a snapshot tuple**, rebuilt by ``connect`` so
      port-addressed sends iterate it without taking the lock.
    * **Egress may be coalesced.**  With ``buffer_egress=True``, ``put``
      appends packed datagrams to a small buffer instead of hitting the
      socket; the buffer is flushed by the pump thread each iteration
      (so server replies batch naturally), by ``poll_wire`` before it
      blocks (so a client's own request precedes its wait), at
      ``flush_every`` pending datagrams, and on ``close``.  Buffering
      changes *when* bytes leave, never *what* leaves — every datagram
      still went through the F-box transform in ``put``.
    """

    #: Capability attribute for the RPC layer: poll_wire accepts a
    #: timeout here (frames arrive from a real wire at any time).
    supports_poll_timeout = True

    def __init__(self, fbox=None, bind_host="127.0.0.1", buffer_egress=False,
                 flush_every=32):
        self.fbox = fbox or FBox()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((bind_host, 0))
        self._sock.settimeout(0.1)
        self.address = self._sock.getsockname()
        self._queues = {}
        self._handlers = {}
        #: Lock-free admission snapshot: wire port -> Queue | handler.
        self._admission = {}
        self._peers = []
        self._peer_snapshot = ()
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self.buffer_egress = buffer_egress
        self.flush_every = flush_every
        # (raw, dst | None) datagrams awaiting flush; deque append/popleft
        # are atomic, so producers and the flushing thread need no lock.
        self._egress = deque()
        self.sent = 0
        self.received = 0
        self._pump = threading.Thread(target=self._pump_loop, daemon=True)
        self._pump.start()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def connect(self, peer_address):
        """Add a peer for port-addressed sends (poor man's broadcast).

        Rebuilds the immutable peer snapshot so senders never take the
        lock.
        """
        with self._lock:
            if peer_address not in self._peers:
                self._peers.append(peer_address)
                self._peer_snapshot = tuple(self._peers)

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------

    def put(self, message, dst_machine=None):
        """Transform through the F-box and transmit as a UDP datagram.

        With ``dst_machine`` (a ``(host, port)`` pair) the frame is
        unicast; otherwise it is offered to every connected peer and their
        admission filters decide — the loopback stand-in for a broadcast
        segment.
        """
        raw = self.fbox.transform_egress(message).pack()
        if len(raw) > MAX_DATAGRAM:
            raise ValueError("message of %d bytes exceeds datagram cap" % len(raw))
        self.sent += 1
        if self.buffer_egress:
            self._egress.append((raw, dst_machine))
            if len(self._egress) >= self.flush_every:
                self.flush_egress()
            return True if dst_machine is not None else bool(self._peer_snapshot)
        if dst_machine is not None:
            self._sock.sendto(raw, dst_machine)
            return True
        peers = self._peer_snapshot
        for peer in peers:
            self._sock.sendto(raw, peer)
        return bool(peers)

    # Same signature as Nic.put_owned; serialisation makes the copy
    # question moot here, so the plain path is reused.
    put_owned = put

    def put_many(self, messages, dst_machine=None):
        """Transform and transmit a batch in one pass.

        Amortizes the per-call bookkeeping (peer snapshot read, counter
        updates) across the batch; each message still goes through the
        full F-box transform and size check.  Returns the number of
        messages offered to at least one destination.
        """
        if self._egress:
            # Earlier buffered datagrams must not be overtaken by this
            # batch — same-sender ordering is part of the buffering
            # contract.
            self.flush_egress()
        transform = self.fbox.transform_egress
        sendto = self._sock.sendto
        peers = self._peer_snapshot
        count = 0
        for message in messages:
            raw = transform(message).pack()
            if len(raw) > MAX_DATAGRAM:
                raise ValueError(
                    "message of %d bytes exceeds datagram cap" % len(raw)
                )
            count += 1
            if dst_machine is not None:
                sendto(raw, dst_machine)
            else:
                for peer in peers:
                    sendto(raw, peer)
        self.sent += count
        return count if (dst_machine is not None or peers) else 0

    def flush_egress(self):
        """Send every buffered datagram; returns how many went out."""
        egress = self._egress
        sendto = self._sock.sendto
        flushed = 0
        while True:
            try:
                raw, dst = egress.popleft()
            except IndexError:
                return flushed
            if dst is not None:
                sendto(raw, dst)
            else:
                for peer in self._peer_snapshot:
                    sendto(raw, peer)
            flushed += 1

    def pump(self, budget=None):
        """Station-API parity with :class:`~repro.net.nic.Nic`: ingress is
        pumped by the background thread, so this only flushes buffered
        egress."""
        return self.flush_egress()

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def _swap_admission(self):
        """Rebuild the lock-free admission snapshot (callers hold _lock).

        The dict is built fresh and swapped in with one attribute store
        (atomic under the GIL), so the pump thread either sees the old
        snapshot or the new one — never a half-mutated dict.
        """
        combined = dict(self._queues)
        combined.update(self._handlers)
        self._admission = combined

    def listen(self, port):
        wire_port = self.fbox.listen_port(as_port(port))
        with self._lock:
            if wire_port not in self._queues:
                self._queues[wire_port] = queue.Queue()
                self._swap_admission()
        return wire_port

    def unlisten(self, port):
        self.unlisten_wire(self.fbox.listen_port(as_port(port)))

    def serve(self, port, handler):
        """Register a request handler; it runs on the pump thread.

        As with :meth:`Nic.serve`, frames queued by an earlier listen()
        on the same port are the server's backlog and are drained into
        the handler (outside the lock, mirroring pump-thread dispatch).
        """
        wire_port = self.fbox.listen_port(as_port(port))
        with self._lock:
            backlog = self._queues.pop(wire_port, None)
            self._handlers[wire_port] = handler
            self._swap_admission()
        while backlog is not None:
            try:
                frame = backlog.get_nowait()
            except queue.Empty:
                break
            handler(frame)
        return wire_port

    def poll(self, port, timeout=None):
        """Next admitted frame for GET(port), blocking up to ``timeout``."""
        wire_port = self.fbox.listen_port(as_port(port))
        return self.poll_wire(wire_port, timeout)

    def poll_wire(self, wire_port, timeout=None):
        """Like :meth:`poll`, keyed by the wire port listen() returned."""
        sink = self._admission.get(wire_port)
        if type(sink) is not queue.Queue:
            return None
        if self._egress:
            # Our own buffered requests must reach the wire before we
            # wait for their replies.
            self.flush_egress()
        try:
            return sink.get(
                block=timeout is not None and timeout > 0, timeout=timeout
            )
        except queue.Empty:
            return None

    def unlisten_wire(self, wire_port):
        """Like :meth:`unlisten`, keyed by the wire port listen() returned."""
        with self._lock:
            q = self._queues.pop(wire_port, None)
            h = self._handlers.pop(wire_port, None)
            if q is not None or h is not None:
                self._swap_admission()

    # ------------------------------------------------------------------
    # pump thread
    # ------------------------------------------------------------------

    def _pump_loop(self):
        from repro.net.network import Frame

        QueueType = queue.Queue
        while not self._closed.is_set():
            try:
                raw, src = self._sock.recvfrom(MAX_DATAGRAM + 1)
            except socket.timeout:
                # Idle tick: anything a handler buffered since the last
                # datagram still has to leave the machine.
                if self._egress:
                    self.flush_egress()
                continue
            except OSError:
                break
            try:
                message = Message.unpack(raw)
            except Exception:
                continue  # garbage datagrams are dropped, like hardware would
            frame = Frame(src=src, dst_machine=None, message=message)
            # One lock-free snapshot read decides admission and delivery.
            sink = self._admission.get(message.dest)
            if sink is None:
                continue  # frames for ports nobody GETs are dropped
            self.received += 1
            if type(sink) is QueueType:
                sink.put(frame)
            else:
                try:
                    sink(frame)
                except Exception:
                    pass  # a crashing server loop must not kill the transport
                # Replies the handler buffered go out with this iteration.
                if self._egress:
                    self.flush_egress()

    def close(self):
        self._closed.set()
        self._pump.join(timeout=2.0)
        if self._egress:
            try:
                self.flush_egress()
            except OSError:
                pass  # socket may already be unusable; buffered frames drop
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return "SocketNode(address=%s:%d)" % self.address
