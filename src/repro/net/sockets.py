"""A real UDP transport with the same station API as the simulator.

The reproduction hint for this paper is "hashlib and sockets": everything
in the library runs over the in-process :class:`~repro.net.network.SimNetwork`
(where the threat model is explicit and deterministic), and over this
module's genuine UDP datagrams on localhost, so the RPC layer can be
exercised end to end across OS processes.

A :class:`SocketNode` mirrors the :class:`~repro.net.nic.Nic` interface —
``listen`` / ``serve`` / ``put`` / ``poll`` — with the F-box applied in
software on egress.  The "unforgeable source address" is the UDP source
address reported by ``recvfrom``; adequate on a loopback interface, and
the simulator remains the reference for security experiments.
"""

import queue
import socket
import threading

from repro.core.ports import as_port
from repro.net.fbox import FBox
from repro.net.message import Message

#: Generous datagram cap: a capability-bearing message is well under 1 KiB,
#: file transfers chunk themselves beneath this.
MAX_DATAGRAM = 60000


class SocketNode:
    """One station on a real UDP network."""

    def __init__(self, fbox=None, bind_host="127.0.0.1"):
        self.fbox = fbox or FBox()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((bind_host, 0))
        self._sock.settimeout(0.1)
        self.address = self._sock.getsockname()
        self._queues = {}
        self._handlers = {}
        self._peers = []
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self.sent = 0
        self.received = 0
        self._pump = threading.Thread(target=self._pump_loop, daemon=True)
        self._pump.start()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def connect(self, peer_address):
        """Add a peer for port-addressed sends (poor man's broadcast)."""
        with self._lock:
            if peer_address not in self._peers:
                self._peers.append(peer_address)

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------

    def put(self, message, dst_machine=None):
        """Transform through the F-box and transmit as a UDP datagram.

        With ``dst_machine`` (a ``(host, port)`` pair) the frame is
        unicast; otherwise it is offered to every connected peer and their
        admission filters decide — the loopback stand-in for a broadcast
        segment.
        """
        raw = self.fbox.transform_egress(message).pack()
        if len(raw) > MAX_DATAGRAM:
            raise ValueError("message of %d bytes exceeds datagram cap" % len(raw))
        self.sent += 1
        if dst_machine is not None:
            self._sock.sendto(raw, dst_machine)
            return True
        with self._lock:
            peers = list(self._peers)
        for peer in peers:
            self._sock.sendto(raw, peer)
        return bool(peers)

    # Same signature as Nic.put_owned; serialisation makes the copy
    # question moot here, so the plain path is reused.
    put_owned = put

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def listen(self, port):
        wire_port = self.fbox.listen_port(as_port(port))
        with self._lock:
            self._queues.setdefault(wire_port, queue.Queue())
        return wire_port

    def unlisten(self, port):
        self.unlisten_wire(self.fbox.listen_port(as_port(port)))

    def serve(self, port, handler):
        """Register a request handler; it runs on the pump thread.

        As with :meth:`Nic.serve`, frames queued by an earlier listen()
        on the same port are the server's backlog and are drained into
        the handler (outside the lock, mirroring pump-thread dispatch).
        """
        wire_port = self.fbox.listen_port(as_port(port))
        with self._lock:
            backlog = self._queues.pop(wire_port, None)
            self._handlers[wire_port] = handler
        while backlog is not None:
            try:
                frame = backlog.get_nowait()
            except queue.Empty:
                break
            handler(frame)
        return wire_port

    def poll(self, port, timeout=None):
        """Next admitted frame for GET(port), blocking up to ``timeout``."""
        wire_port = self.fbox.listen_port(as_port(port))
        return self.poll_wire(wire_port, timeout)

    def poll_wire(self, wire_port, timeout=None):
        """Like :meth:`poll`, keyed by the wire port listen() returned."""
        with self._lock:
            q = self._queues.get(wire_port)
        if q is None:
            return None
        try:
            return q.get(block=timeout is not None and timeout > 0, timeout=timeout)
        except queue.Empty:
            return None

    def unlisten_wire(self, wire_port):
        """Like :meth:`unlisten`, keyed by the wire port listen() returned."""
        with self._lock:
            self._queues.pop(wire_port, None)
            self._handlers.pop(wire_port, None)

    # ------------------------------------------------------------------
    # pump thread
    # ------------------------------------------------------------------

    def _pump_loop(self):
        from repro.net.network import Frame

        while not self._closed.is_set():
            try:
                raw, src = self._sock.recvfrom(MAX_DATAGRAM + 1)
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                message = Message.unpack(raw)
            except Exception:
                continue  # garbage datagrams are dropped, like hardware would
            frame = Frame(src=src, dst_machine=None, message=message)
            with self._lock:
                handler = self._handlers.get(message.dest)
                q = self._queues.get(message.dest)
            if handler is not None:
                self.received += 1
                try:
                    handler(frame)
                except Exception:
                    # A crashing server loop must not kill the transport.
                    continue
            elif q is not None:
                self.received += 1
                q.put(frame)
            # Frames for ports nobody GETs are dropped silently.

    def close(self):
        self._closed.set()
        self._pump.join(timeout=2.0)
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return "SocketNode(address=%s:%d)" % self.address
