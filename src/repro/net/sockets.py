"""A real UDP transport with the same station API as the simulator.

The reproduction hint for this paper is "hashlib and sockets": everything
in the library runs over the in-process :class:`~repro.net.network.SimNetwork`
(where the threat model is explicit and deterministic), and over this
module's genuine UDP datagrams on localhost, so the RPC layer can be
exercised end to end across OS processes.

A :class:`SocketNode` mirrors the :class:`~repro.net.nic.Nic` interface —
``listen`` / ``serve`` / ``put`` / ``poll`` — with the F-box applied in
software on egress.  The "unforgeable source address" is the UDP source
address reported by ``recvfrom``; adequate on a loopback interface, and
the simulator remains the reference for security experiments.
"""

import queue
import select
import socket
import threading
from collections import deque

from repro.core.ports import as_port
from repro.net.fbox import FBox
from repro.net.message import Message

#: Generous datagram cap: a capability-bearing message is well under 1 KiB,
#: file transfers chunk themselves beneath this.
MAX_DATAGRAM = 60000

#: Magic prefix of an *aggregate carrier* datagram: a coalesced run of
#: same-destination frames, each 4-byte length-prefixed.  Transport-level
#: framing only — every inner frame is an ordinary, individually F-box
#: transformed message that went through the normal admission path on
#: arrival; aggregation changes how many syscalls a burst costs, never
#: what is on the wire inside them.  Cannot collide with a plain message
#: (those start with the codec magic ``b"AM"``).
_AGG_MAGIC = b"AB1"
_AGG_HEADER = len(_AGG_MAGIC)

#: Magic prefix of a *control-plane* datagram: a tiny out-of-band lane
#: (replica join/leave, liveness pings) that never carries capabilities
#: and never enters the message codec or admission path.  One kind byte
#: follows the magic, then an opaque payload.  Cannot collide with plain
#: messages (``b"AM"``) or aggregate carriers (``b"AB1"``).
_CTL_MAGIC = b"AC1"
_CTL_HEADER = len(_CTL_MAGIC)

#: Control kinds: liveness probe and its kernel-level answer.  The pump
#: answers PING itself — health checking a station must not depend on
#: any server being registered on it.
CTL_PING = b"P"
CTL_PONG = b"O"
#: Replica membership kinds, interpreted by whoever registered an
#: ``on_control`` handler (see :mod:`repro.ipc.replica`).
CTL_JOIN = b"J"
CTL_LEAVE = b"L"


class _BatchSink:
    """Admission-snapshot marker wrapping a *batch* request handler.

    The pump groups each ingress burst's admitted frames per batch sink
    and delivers them as one ``handler(frames)`` call — the socket
    counterpart of the event loop's coalesced queue runs.
    """

    __slots__ = ("handler",)

    def __init__(self, handler):
        self.handler = handler


class SocketNode:
    """One station on a real UDP network.

    Concurrency notes (the pump thread receives while any number of
    client threads send):

    * **Admission is a lock-free snapshot.**  ``_admission`` maps wire
      port → sink (a ``queue.SimpleQueue`` for client GETs, a callable
      for server GETs) and is *replaced wholesale* — never mutated —
      under ``_lock`` by listen/serve/unlisten.  Readers (the pump thread's
      per-datagram lookup, ``poll_wire``) just read the attribute: no
      lock round-trip on the per-datagram path.
    * **Peers are a snapshot tuple**, rebuilt by ``connect`` so
      port-addressed sends iterate it without taking the lock.
    * **Egress may be coalesced.**  With ``buffer_egress=True``, ``put``
      appends packed datagrams to a small buffer instead of hitting the
      socket; the buffer is flushed by the pump thread each iteration
      (so server replies batch naturally), by ``poll_wire`` before it
      blocks (so a client's own request precedes its wait), at
      ``flush_every`` pending datagrams, and on ``close``.  Buffering
      changes *when* bytes leave, never *what* leaves — every datagram
      still went through the F-box transform in ``put``.
    * **Ingress is batched.**  After the blocking receive that starts a
      pump iteration, the pump drains up to ``recv_batch - 1`` further
      datagrams non-blocking, dispatches the whole burst, and flushes
      buffered egress once — so a pipelined client's burst of requests
      becomes one batch of handler calls and one reply flush, mirroring
      the egress coalescing on the receive side.  Admission, ordering,
      and drop behaviour per datagram are identical to one-at-a-time
      receives.
    """

    #: Capability attribute for the RPC layer: poll_wire accepts a
    #: timeout here (frames arrive from a real wire at any time).
    supports_poll_timeout = True

    #: Station-API parity with :class:`~repro.net.nic.Nic`: a SocketNode
    #: always runs on the wall clock — real datagrams take real time, so
    #: its blocking polls consume wall seconds, never virtual ones.
    #: Protocol code (rpc, locate) can therefore ask any station for
    #: ``node.clock`` and treat None as "timeouts are wall time".
    clock = None

    #: Capability attribute for ObjectServer.start(): recv-side batching
    #: makes batch dispatch (serve_batch + bulk reply egress) profitable
    #: on this transport.
    supports_batch_serve = True

    #: Seconds the pump blocks per receive before checking for shutdown
    #: and buffered egress; also restored after each non-blocking drain.
    _POLL_INTERVAL = 0.1

    def __init__(self, fbox=None, bind_host="127.0.0.1", buffer_egress=False,
                 flush_every=32, recv_batch=32, faults=None):
        self.fbox = fbox or FBox()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((bind_host, 0))
        self._sock.settimeout(self._POLL_INTERVAL)
        #: Optional FaultPlan; every egress datagram — plain frames and
        #: aggregate carriers alike — passes through it.  None keeps the
        #: transmit function the raw socket sendto, costing nothing.
        self.faults = faults
        if faults is not None:
            from repro.net.faults import faulty_sendto

            self._sendto = faulty_sendto(self._sock.sendto, faults)
        else:
            self._sendto = self._sock.sendto
        self.recv_batch = recv_batch
        self.address = self._sock.getsockname()
        self._queues = {}
        self._handlers = {}
        #: Lock-free admission snapshot: wire port -> Queue | handler.
        self._admission = {}
        self._peers = []
        self._peer_snapshot = ()
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self.buffer_egress = buffer_egress
        self.flush_every = flush_every
        # (raw, dst | None) datagrams awaiting flush; deque append/popleft
        # are atomic, so producers and the flushing thread need no lock.
        self._egress = deque()
        self.sent = 0
        self.received = 0
        # Broadcast fallback and control-lane sinks: snapshot tuples,
        # replaced wholesale under _lock, read lock-free by the pump.
        self._broadcast_handlers = ()
        self._control_handlers = ()
        self.control_sent = 0
        self.control_received = 0
        self._pump = threading.Thread(target=self._pump_loop, daemon=True)
        self._pump.start()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def connect(self, peer_address):
        """Add a peer for port-addressed sends (poor man's broadcast).

        Rebuilds the immutable peer snapshot so senders never take the
        lock.
        """
        with self._lock:
            if peer_address not in self._peers:
                self._peers.append(peer_address)
                self._peer_snapshot = tuple(self._peers)

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------

    @staticmethod
    def _pack_for_wire(message, transform):
        """The one egress serialisation: transform, pack, size-check.

        Every egress path goes through here so the datagram-cap policy
        cannot drift between the single, batch, and buffered variants;
        ``transform`` is the caller's choice of F-box path (copying or
        owned — the transformation itself is identical).
        """
        raw = transform(message).pack()
        if len(raw) > MAX_DATAGRAM:
            raise ValueError("message of %d bytes exceeds datagram cap" % len(raw))
        return raw

    def put(self, message, dst_machine=None):
        """Transform through the F-box and transmit as a UDP datagram.

        With ``dst_machine`` (a ``(host, port)`` pair) the frame is
        unicast; otherwise it is offered to every connected peer and their
        admission filters decide — the loopback stand-in for a broadcast
        segment.
        """
        raw = self._pack_for_wire(message, self.fbox.transform_egress)
        self.sent += 1
        if self.buffer_egress:
            self._egress.append((raw, dst_machine))
            if len(self._egress) >= self.flush_every:
                self.flush_egress()
            return True if dst_machine is not None else bool(self._peer_snapshot)
        if dst_machine is not None:
            self._sendto(raw, dst_machine)
            return True
        peers = self._peer_snapshot
        for peer in peers:
            self._sendto(raw, peer)
        return bool(peers)

    # Same signature as Nic.put_owned; serialisation makes the copy
    # question moot here, so the plain path is reused.
    put_owned = put

    def put_broadcast(self, message):
        """Offer a frame to every connected peer — the loopback stand-in
        for a broadcast segment (station-API parity with
        :meth:`Nic.put_broadcast`; LOCATE rides this)."""
        return self.put(message, None)

    def on_broadcast(self, handler):
        """Register ``handler(frame)`` for frames no admission sink
        claims.  On a real segment a broadcast is just a datagram every
        station receives; on loopback the closest analogue is "arrived
        but addressed to no GET here" — which is exactly what a LOCATE
        probe looks like to a responder.  Handlers filter by command."""
        with self._lock:
            self._broadcast_handlers = self._broadcast_handlers + (handler,)
        return handler

    # ------------------------------------------------------------------
    # control-plane lane (join/leave/health)
    # ------------------------------------------------------------------

    def send_control(self, kind, payload=b"", dst=None):
        """Transmit one control datagram (``kind`` is a single byte).

        Bypasses the egress buffer deliberately: membership and health
        traffic must not queue behind a data burst.  Without ``dst`` the
        datagram is offered to every connected peer.
        """
        if len(kind) != 1:
            raise ValueError("control kind must be a single byte")
        raw = _CTL_MAGIC + kind + payload
        if len(raw) > MAX_DATAGRAM:
            raise ValueError("control payload exceeds datagram cap")
        self.control_sent += 1
        if dst is not None:
            self._sendto(raw, dst)
            return True
        peers = self._peer_snapshot
        for peer in peers:
            self._sendto(raw, peer)
        return bool(peers)

    def on_control(self, handler):
        """Register ``handler(kind, payload, src)`` for inbound control
        datagrams; runs on the pump thread.  Returns the handler so a
        caller can later :meth:`off_control` it."""
        with self._lock:
            self._control_handlers = self._control_handlers + (handler,)
        return handler

    def off_control(self, handler):
        with self._lock:
            self._control_handlers = tuple(
                h for h in self._control_handlers if h is not handler
            )

    def _send_run(self, raws, dst):
        """Send a run of packed frames to one destination, coalesced.

        A lone frame goes out as a plain datagram; two or more travel in
        aggregate carriers (``_AGG_MAGIC`` + length-prefixed frames),
        chunked under :data:`MAX_DATAGRAM` — one syscall per carrier
        instead of one per frame.  On a single shared CPU this is the
        difference between pipelining amortizing the kernel crossings
        and merely reordering them.
        """
        sendto = self._sendto
        if len(raws) == 1:
            sendto(raws[0], dst)
            return
        parts = []
        size = _AGG_HEADER
        for raw in raws:
            need = 4 + len(raw)
            if _AGG_HEADER + need > MAX_DATAGRAM:
                # Too big to ride a carrier at all (the frame itself is
                # within the cap, but not with carrier overhead): flush
                # what is pending to keep ordering, then send it plain.
                if parts:
                    sendto(_AGG_MAGIC + b"".join(parts), dst)
                    parts = []
                    size = _AGG_HEADER
                sendto(raw, dst)
                continue
            if parts and size + need > MAX_DATAGRAM:
                sendto(_AGG_MAGIC + b"".join(parts), dst)
                parts = []
                size = _AGG_HEADER
            parts.append(len(raw).to_bytes(4, "big"))
            parts.append(raw)
            size += need
        if parts:
            sendto(_AGG_MAGIC + b"".join(parts), dst)

    def put_owned_bulk(self, messages, dst_machine=None):
        """Transform a batch of privately built messages in place and
        transmit — the egress half of a pipelined issue over sockets.

        Each message gets the identical, unconditional F-box
        transformation of :meth:`put_owned`; the burst then leaves as
        aggregate carriers (see :meth:`_send_run`), so a 16-in-flight
        issue costs one or two ``sendto`` calls instead of sixteen.
        """
        if self._egress:
            # Same-sender ordering: earlier buffered datagrams first.
            self.flush_egress()
        transform = self.fbox.transform_egress_owned
        pack = self._pack_for_wire
        peers = self._peer_snapshot
        raws = [pack(message, transform) for message in messages]
        self.sent += len(raws)
        if raws:
            if dst_machine is not None:
                self._send_run(raws, dst_machine)
            else:
                for peer in peers:
                    self._send_run(raws, peer)
        return len(raws) if (dst_machine is not None or peers) else 0

    def put_owned_unicast_bulk(self, pairs):
        """Transmit a batch of privately built unicast (message, machine)
        pairs — a batch server's reply egress.  Each message is F-box
        transformed in place exactly as :meth:`put_owned` would;
        consecutive same-destination replies share aggregate carriers."""
        if self._egress:
            self.flush_egress()
        transform = self.fbox.transform_egress_owned
        pack = self._pack_for_wire
        count = 0
        run = []
        run_dst = None
        for message, dst in pairs:
            raw = pack(message, transform)
            count += 1
            if dst != run_dst and run:
                self._send_run(run, run_dst)
                run = []
            run_dst = dst
            run.append(raw)
        if run:
            self._send_run(run, run_dst)
        self.sent += count
        return count

    def put_many(self, messages, dst_machine=None):
        """Transform and transmit a batch in one pass.

        Amortizes the per-call bookkeeping (peer snapshot read, counter
        updates) across the batch; each message still goes through the
        full F-box transform and size check.  Returns the number of
        messages offered to at least one destination.
        """
        if self._egress:
            # Earlier buffered datagrams must not be overtaken by this
            # batch — same-sender ordering is part of the buffering
            # contract.
            self.flush_egress()
        transform = self.fbox.transform_egress
        pack = self._pack_for_wire
        sendto = self._sendto
        peers = self._peer_snapshot
        count = 0
        for message in messages:
            raw = pack(message, transform)
            count += 1
            if dst_machine is not None:
                sendto(raw, dst_machine)
            else:
                for peer in peers:
                    sendto(raw, peer)
        self.sent += count
        return count if (dst_machine is not None or peers) else 0

    def flush_egress(self):
        """Send every buffered datagram; returns how many went out.

        Consecutive same-destination datagrams leave coalesced in
        aggregate carriers (runs are consecutive, so ordering per
        destination is untouched); a server's burst of replies to one
        pipelined client is one syscall.
        """
        egress = self._egress
        flushed = 0
        run = []
        run_dst = None
        while True:
            try:
                raw, dst = egress.popleft()
            except IndexError:
                break
            if run and dst != run_dst:
                self._flush_run(run, run_dst)
                run = []
            run_dst = dst
            run.append(raw)
            flushed += 1
        if run:
            self._flush_run(run, run_dst)
        return flushed

    def _flush_run(self, raws, dst):
        if dst is not None:
            self._send_run(raws, dst)
        else:
            for peer in self._peer_snapshot:
                self._send_run(raws, peer)

    def pump(self, budget=None):
        """Station-API parity with :class:`~repro.net.nic.Nic`: ingress is
        pumped by the background thread, so this only flushes buffered
        egress."""
        return self.flush_egress()

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def _swap_admission(self):
        """Rebuild the lock-free admission snapshot (callers hold _lock).

        The dict is built fresh and swapped in with one attribute store
        (atomic under the GIL), so the pump thread either sees the old
        snapshot or the new one — never a half-mutated dict.
        """
        combined = dict(self._queues)
        combined.update(self._handlers)
        self._admission = combined

    def listen(self, port):
        wire_port = self.fbox.listen_port(as_port(port))
        with self._lock:
            if wire_port not in self._queues:
                # SimpleQueue: C-implemented, a fraction of queue.Queue's
                # construction and handoff cost — and a GET sink needs
                # none of Queue's task tracking.
                self._queues[wire_port] = queue.SimpleQueue()
                self._swap_admission()
        return wire_port

    def listen_fresh(self, ports):
        """Batch GET on a set of fresh (just-drawn) reply ports.

        The socket counterpart of :meth:`Nic.listen_fresh`: every port is
        one-wayed in one F-box batch and admitted under a single lock
        acquisition and admission swap, instead of one rebuild per
        transaction.  Returns the wire ports, or None when any wire port
        collides with an existing GET or another port of the batch
        (callers fall back to issuing one at a time — sharing a sink
        would cross two transactions' replies).
        """
        wires = self.fbox.one_way_batch(ports)
        with self._lock:
            queues = self._queues
            handlers = self._handlers
            if len(set(wires)) != len(wires):
                return None
            for wire_port in wires:
                if wire_port in queues or wire_port in handlers:
                    return None
            for wire_port in wires:
                queues[wire_port] = queue.SimpleQueue()
            self._swap_admission()
        return wires

    def reply_queues(self, wire_ports):
        """The live queue sinks for a batch of wire ports (collect half
        of a pipelined issue).  The GETs stay admitted — withdraw with
        :meth:`unlisten_wire_many` only after the replies are in, so the
        pump never drops an in-flight reply."""
        admission = self._admission
        return [admission.get(wire_port) for wire_port in wire_ports]

    def unlisten_wire_many(self, wire_ports):
        """Withdraw a batch of GETs with one admission swap."""
        with self._lock:
            changed = False
            for wire_port in wire_ports:
                if (
                    self._queues.pop(wire_port, None) is not None
                    or self._handlers.pop(wire_port, None) is not None
                ):
                    changed = True
            if changed:
                self._swap_admission()

    def unlisten(self, port):
        self.unlisten_wire(self.fbox.listen_port(as_port(port)))

    def serve(self, port, handler):
        """Register a request handler; it runs on the pump thread.

        As with :meth:`Nic.serve`, frames queued by an earlier listen()
        on the same port are the server's backlog and are drained into
        the handler (outside the lock, mirroring pump-thread dispatch).
        """
        wire_port = self.fbox.listen_port(as_port(port))
        with self._lock:
            backlog = self._queues.pop(wire_port, None)
            self._handlers[wire_port] = handler
            self._swap_admission()
        while backlog is not None:
            try:
                frame = backlog.get_nowait()
            except queue.Empty:
                break
            handler(frame)
        return wire_port

    def serve_batch(self, port, batch_handler):
        """Register a *batch* request handler; it runs on the pump thread.

        Each pump iteration's ingress burst for this port arrives as one
        ``batch_handler(frames)`` call (arrival order preserved), so a
        pipelined client's 16 requests cost one dispatch preamble and —
        with :meth:`put_owned_unicast_bulk` — one reply burst.  Backlog
        queued by an earlier listen() is delivered as its own batch.
        """
        wire_port = self.fbox.listen_port(as_port(port))
        sink = _BatchSink(batch_handler)
        with self._lock:
            backlog = self._queues.pop(wire_port, None)
            self._handlers[wire_port] = sink
            self._swap_admission()
        if backlog is not None:
            frames = []
            while True:
                try:
                    frames.append(backlog.get_nowait())
                except queue.Empty:
                    break
            if frames:
                batch_handler(frames)
        return wire_port

    def poll(self, port, timeout=None):
        """Next admitted frame for GET(port), blocking up to ``timeout``."""
        wire_port = self.fbox.listen_port(as_port(port))
        return self.poll_wire(wire_port, timeout)

    def poll_wire(self, wire_port, timeout=None):
        """Like :meth:`poll`, keyed by the wire port listen() returned."""
        sink = self._admission.get(wire_port)
        if type(sink) is not queue.SimpleQueue:
            return None
        if self._egress:
            # Our own buffered requests must reach the wire before we
            # wait for their replies.
            self.flush_egress()
        try:
            return sink.get(
                block=timeout is not None and timeout > 0, timeout=timeout
            )
        except queue.Empty:
            return None

    def unlisten_wire(self, wire_port):
        """Like :meth:`unlisten`, keyed by the wire port listen() returned."""
        with self._lock:
            q = self._queues.pop(wire_port, None)
            h = self._handlers.pop(wire_port, None)
            if q is not None or h is not None:
                self._swap_admission()

    # ------------------------------------------------------------------
    # pump thread
    # ------------------------------------------------------------------

    def _pump_loop(self):
        from repro.net.network import Frame

        QueueType = queue.SimpleQueue
        sock = self._sock
        unpack = Message.unpack
        batch = []
        while not self._closed.is_set():
            try:
                batch.append(sock.recvfrom(MAX_DATAGRAM + 1))
            except socket.timeout:
                # Idle tick: anything a handler buffered since the last
                # datagram still has to leave the machine.
                if self._egress:
                    self.flush_egress()
                continue
            except OSError:
                break
            # Drain whatever else has already arrived, without blocking:
            # a zero-timeout select probes readability (the timeout is a
            # socket-wide attribute shared with concurrent senders, so
            # toggling it here would turn their blocking sendto calls
            # into spurious BlockingIOErrors), and a readable socket
            # makes the recvfrom return at once.  The burst a pipelined
            # client or a coalescing sender put on the wire is dispatched
            # as one batch with one egress flush at the end.
            limit = self.recv_batch
            if limit > 1:
                try:
                    while (
                        len(batch) < limit
                        and select.select([sock], [], [], 0)[0]
                    ):
                        batch.append(sock.recvfrom(MAX_DATAGRAM + 1))
                except OSError:
                    pass  # socket closing mid-drain; outer loop notices
            # Split aggregate carriers back into individual frames; each
            # inner frame then takes the identical unpack/admission path
            # a plain datagram takes.  A truncated carrier tail is
            # dropped like any other garbage datagram.
            expanded = []
            for raw, src in batch:
                if raw[:_AGG_HEADER] != _AGG_MAGIC:
                    expanded.append((raw, src))
                    continue
                pos = _AGG_HEADER
                end = len(raw)
                while pos + 4 <= end:
                    flen = int.from_bytes(raw[pos:pos + 4], "big")
                    pos += 4
                    if pos + flen > end:
                        break
                    expanded.append((raw[pos:pos + flen], src))
                    pos += flen
            admitted = 0
            batch_runs = None
            faults = self.faults
            for raw, src in expanded:
                if (faults is not None and faults.has_partitions
                        and faults.link_severed(src, None)):
                    # Ingress half of a severed link: the plan only sees
                    # this node's egress, so cuts *toward* us are
                    # enforced here, before the control lane — a
                    # partitioned peer cannot even answer PING.
                    faults.note_partition_drop(src, None)
                    continue
                if raw[:_CTL_HEADER] == _CTL_MAGIC:
                    # Control lane: one kind byte + opaque payload, never
                    # unpacked as a message.  PING is answered by the
                    # station itself — liveness must not depend on any
                    # server being registered here.
                    kind = raw[_CTL_HEADER:_CTL_HEADER + 1]
                    payload = raw[_CTL_HEADER + 1:]
                    self.control_received += 1
                    if kind == CTL_PING:
                        try:
                            self._sendto(_CTL_MAGIC + CTL_PONG + payload, src)
                        except OSError:
                            pass
                    for handler in self._control_handlers:
                        try:
                            handler(kind, payload, src)
                        except Exception:
                            pass  # a crashing handler must not kill the pump
                    continue
                try:
                    message = unpack(raw)
                except Exception:
                    continue  # garbage datagrams are dropped, like hardware
                # One lock-free snapshot read decides admission/delivery —
                # re-read per datagram so a listen() a handler just made
                # admits later datagrams of the same batch.
                sink = self._admission.get(message.dest)
                if sink is None:
                    # Frames for ports nobody GETs here go to the
                    # broadcast fallback (a LOCATE probe is exactly such
                    # a frame); with no handlers they drop as before.
                    handlers = self._broadcast_handlers
                    if handlers:
                        frame = Frame(src=src, dst_machine=None, message=message)
                        for handler in handlers:
                            try:
                                handler(frame)
                            except Exception:
                                pass
                    continue
                admitted += 1
                frame = Frame(src=src, dst_machine=None, message=message)
                kind = type(sink)
                if kind is QueueType:
                    sink.put(frame)
                elif kind is _BatchSink:
                    # Coalesce this burst's frames into one handler call.
                    if batch_runs is None:
                        batch_runs = {}
                    run = batch_runs.get(sink)
                    if run is None:
                        batch_runs[sink] = [frame]
                    else:
                        run.append(frame)
                else:
                    try:
                        sink(frame)
                    except Exception:
                        pass  # a crashing server must not kill the transport
            if batch_runs is not None:
                for sink, frames in batch_runs.items():
                    try:
                        sink.handler(frames)
                    except Exception:
                        pass  # a crashing server must not kill the transport
            batch.clear()
            self.received += admitted
            # Replies the handlers buffered go out with this iteration.
            if self._egress:
                self.flush_egress()

    def close(self):
        self._closed.set()
        self._pump.join(timeout=2.0)
        if self._egress:
            try:
                self.flush_egress()
            except OSError:
                pass  # socket may already be unusable; buffered frames drop
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return "SocketNode(address=%s:%d)" % self.address
