"""The event-loop delivery engine: deferred dispatch with real queues.

The paper's transaction (§2.1) is one blocking round trip, and the
synchronous simulator reproduces that literally — ``SimNetwork.send``
recurses straight into ``nic.accept``, so exactly one transaction is ever
in flight.  This module is the other delivery discipline: ``send`` becomes
an O(1) enqueue onto an :class:`EventLoop`, and a ``pump()`` drain loop
dispatches admitted frames to their stations later.  That is the standard
asynchronous message-passing model of distributed-system theory (frames
in flight live in channel queues; delivery is a separate scheduler step),
and it is what lets the system sustain many in-flight transactions and
model queueing under heavy traffic.

Semantics
---------
* **Admission is decided at enqueue time** (the routing index mirrors the
  admission filters exactly, so "would any station take this frame?" is
  one dict lookup); ``send`` returns that verdict immediately, which
  keeps ``trans``'s ``PortNotLocated`` behavior identical.  Delivery is
  **re-checked at dispatch time**: a listener that withdrew its GET (or a
  machine that detached) between enqueue and pump drops the frame, like a
  real network losing a packet addressed to a dead host.
* **Per-port ingress queues.**  Every wire port with frames in flight has
  its own FIFO; the pump rotates round-robin across ports, one frame per
  turn, so a flooded port cannot starve the others.  Replicated servers
  additionally share load through the network's round-robin arbiter at
  dispatch, exactly as in synchronous mode.
* **Overload is visible.**  ``max_depth`` bounds each port's queue; a
  frame arriving at a full queue is dropped and counted
  (``dropped_overflow``), which is how "heavy traffic" scenarios observe
  loss instead of unbounded memory growth.
* **Re-entrancy.**  Handlers run inside ``pump()`` and their own sends
  enqueue without recursing (the loop notices it is already draining).
  A handler that raises aborts the current pump with the remaining
  frames still queued; the next pump carries on.

This module also hosts the third delivery discipline: the virtual-clock
discrete-event mode (:class:`VirtualClock`, :class:`LatencyModel`,
:class:`VirtualTimeLoop`), in which frames arrive at *scheduled
instants* of simulated time rather than "whenever the pump runs".  That
is what lets the simulator model 1986-era wire latencies (§4's 1.4 ms
locate, RPC economics) deterministically on any host — see
docs/PERFORMANCE.md §"Virtual-clock DES".
"""

import random
from collections import deque
from heapq import heappop, heappush

from repro.net.nic import _BatchSink

# Heap-event kind marker distinguishing a timer callback from a frame's
# broadcast flag (see VirtualTimeLoop.call_at).  Never compared by the
# heap: the unique schedule seq breaks every tie first.
_TIMER = object()


class EventLoop:
    """Deferred frame delivery for one :class:`~repro.net.network.SimNetwork`.

    Created by ``SimNetwork(synchronous=False)``; not normally constructed
    directly.  ``max_depth`` bounds each per-port ingress queue (0 means
    unbounded).
    """

    __slots__ = (
        "network",
        "max_depth",
        "_queues",
        "_ready",
        "_draining",
        "dispatched",
        "dropped_overflow",
        "dropped_dead",
        "max_depth_seen",
    )

    def __init__(self, network, max_depth=0):
        self.network = network
        self.max_depth = max_depth
        # wire port -> deque of Frames in flight for it.  An entry exists
        # iff the port has at least one queued frame (emptied queues are
        # deleted immediately so per-transaction reply ports cannot
        # accumulate dict residue).
        self._queues = {}
        # Round-robin rotation of ports with pending frames; each pending
        # port appears exactly once.
        self._ready = deque()
        self._draining = False
        #: Frames handed to a station's admission filter by pump().
        self.dispatched = 0
        #: Frames dropped at enqueue because the port's queue was full.
        self.dropped_overflow = 0
        #: Frames admitted at enqueue but undeliverable at dispatch (the
        #: listener unlistened or its machine detached in between).
        self.dropped_dead = 0
        #: High-water mark of any single port queue.
        self.max_depth_seen = 0

    # ------------------------------------------------------------------
    # ingress (called by SimNetwork.send)
    # ------------------------------------------------------------------

    def enqueue(self, frame):
        """Queue one admitted frame; O(1).  False means an overflow drop.

        Queues are keyed by the wire port's integer value (ports hash
        through a Python-level ``__hash__``; their 48-bit values hash in
        C), an internal detail — every public surface takes Ports.
        """
        dest = frame.message.dest.value
        queues = self._queues
        q = queues.get(dest)
        if q is None:
            queues[dest] = q = deque((frame,))
            self._ready.append(dest)
            if self.max_depth_seen == 0:
                self.max_depth_seen = 1
            return True
        if self.max_depth and len(q) >= self.max_depth:
            self.dropped_overflow += 1
            return False
        q.append(frame)
        if len(q) > self.max_depth_seen:
            self.max_depth_seen = len(q)
        return True

    def enqueue_bulk(self, dest, frames):
        """Queue a batch of frames that all carry wire port ``dest``.

        The batch counterpart of :meth:`enqueue` for pipelined issuers:
        one queue lookup and one extend for the whole batch.  Returns the
        number accepted (the tail beyond ``max_depth`` is dropped and
        counted, exactly as per-frame enqueue would have).
        """
        count = len(frames)
        if count == 0:
            return 0
        dest = dest.value
        queues = self._queues
        q = queues.get(dest)
        if q is None:
            queues[dest] = q = deque()
            self._ready.append(dest)
        if self.max_depth:
            space = self.max_depth - len(q)
            if space < count:
                overflow = count - space if space > 0 else count
                self.dropped_overflow += overflow
                count -= overflow
                frames = frames[:count]
        q.extend(frames)
        depth = len(q)
        if depth > self.max_depth_seen:
            self.max_depth_seen = depth
        if depth == 0:
            # Nothing fit at all: drop the queue we just created rather
            # than leave an empty entry in the rotation.
            del queues[dest]
            self._ready.remove(dest)
        return count

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def pump(self, budget=None):
        """Dispatch up to ``budget`` queued frames (all of them if None).

        Rotates round-robin across ports with pending frames, one frame
        per port per turn.  Frames enqueued by handlers *during* the pump
        join the rotation and are dispatched in the same call (unless the
        budget runs out first).  Returns the number of frames dispatched;
        a re-entrant call from inside a handler returns 0 immediately.
        """
        if self._draining or not self._ready:
            return 0
        self._draining = True
        dispatched = 0
        dead = 0
        delivered = 0
        ready = self._ready
        queues = self._queues
        network = self.network
        nics = network._nics
        listeners = network._listeners
        round_robin = network._round_robin
        faults = network._faults
        try:
            while ready and (budget is None or dispatched < budget):
                dest = ready.popleft()
                q = queues[dest]
                # Severed-link state is re-read every turn: a handler
                # may cut or heal a link mid-drain, and queued frames
                # must honor the topology at *dispatch* time.
                partitioned = faults is not None and faults.has_partitions
                # Run coalescing: when this is the only pending port and
                # its lone listener is taking port-addressed frames, the
                # head run is drained as one delivery — the software
                # analogue of a NIC handing its whole DMA ring to the
                # driver per interrupt.  With other ports pending, or a
                # replicated service on the port, strict one-frame-per-
                # turn rotation (and the round-robin arbiter) applies.
                # Under an active partition the run's frames may have
                # different (severed or live) source links, so the
                # per-frame arm applies.
                if not ready and not partitioned and q[0].dst_machine is None:
                    wire = q[0].message.dest
                    takers = listeners.get(wire)
                    if takers is not None and len(takers) == 1:
                        nic = nics[takers[0]]
                        sink = nic._sinks.get(wire)
                        # Coalesce only for sinks that take the whole run
                        # in one hand-over (a passive queue, or a batch
                        # handler that owns every frame it is given) — a
                        # per-frame handler that raised mid-run would
                        # otherwise lose the popped remainder, breaking
                        # the "remaining frames still queued" abort
                        # semantics.
                        coalesce = (
                            type(sink) is deque or type(sink) is _BatchSink
                        )
                    else:
                        coalesce = False
                    if coalesce:
                        limit = (
                            len(q)
                            if budget is None
                            else min(len(q), budget - dispatched)
                        )
                        run = []
                        while limit and q and q[0].dst_machine is None:
                            run.append(q.popleft())
                            limit -= 1
                        if q:
                            ready.append(dest)
                        else:
                            # Delete before delivering: frames a batch
                            # handler enqueues for this port get a fresh
                            # queue and rotation slot.
                            del queues[dest]
                        dispatched += len(run)
                        try:
                            got = nic.accept_run(wire, run)
                        except BaseException:
                            # A raising batch handler owns the frames it
                            # was handed (as in synchronous delivery);
                            # account them before propagating.
                            delivered += len(run)
                            raise
                        delivered += got
                        dead += len(run) - got
                        continue
                # Rotation: one frame per pending port per turn.
                frame = q.popleft()
                if q:
                    ready.append(dest)
                else:
                    # Delete before dispatching: if the handler below
                    # enqueues more frames for this port they get a
                    # fresh queue and a fresh rotation slot.
                    del queues[dest]
                dispatched += 1
                # Deliver, re-checking admission against the live
                # filters.  The port-addressed arm mirrors
                # SimNetwork._route exactly (single-listener fast path,
                # round-robin arbiter for replicated services) with the
                # index dicts held in locals across the whole drain.
                dst = frame.dst_machine
                if dst is not None:
                    if partitioned and faults.link_severed(frame.src, dst):
                        faults.note_partition_drop(frame.src, dst)
                        ok = False
                    else:
                        nic = nics.get(dst)
                        ok = nic is not None and nic.accept(frame)
                else:
                    wire = frame.message.dest
                    takers = listeners.get(wire)
                    if takers and partitioned:
                        src = frame.src
                        takers = [a for a in takers
                                  if not faults.link_severed(src, a)]
                        if not takers:
                            faults.note_partition_drop(src, None)
                    if not takers:
                        ok = False
                    elif len(takers) == 1:
                        ok = nics[takers[0]].accept(frame)
                    else:
                        start = round_robin.get(wire, 0)
                        round_robin[wire] = start + 1
                        ok = nics[takers[start % len(takers)]].accept(frame)
                if ok:
                    delivered += 1
                else:
                    dead += 1
        finally:
            self._draining = False
            self.dispatched += dispatched
            self.dropped_dead += dead
            network.frames_delivered += delivered
            network.frames_dropped += dead
        return dispatched

    def run(self):
        """Drain until no frames are pending; returns frames dispatched."""
        return self.pump(None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def pending(self):
        """Total frames currently queued across all ports."""
        return sum(len(q) for q in self._queues.values())

    def depth(self, wire_port):
        """Queue depth for one wire port (0 if nothing is pending)."""
        q = self._queues.get(getattr(wire_port, "value", wire_port))
        return len(q) if q is not None else 0

    def stats(self):
        """Scheduler counters as a dict (stable keys for benchmarks)."""
        return {
            "pending": self.pending,
            "ports_pending": len(self._queues),
            "dispatched": self.dispatched,
            "dropped_overflow": self.dropped_overflow,
            "dropped_dead": self.dropped_dead,
            "max_depth_seen": self.max_depth_seen,
        }

    def reset_stats(self):
        """Zero the counters (queued frames stay queued)."""
        self.dispatched = 0
        self.dropped_overflow = 0
        self.dropped_dead = 0
        self.max_depth_seen = self.pending and max(
            len(q) for q in self._queues.values()
        )

    def __repr__(self):
        return "EventLoop(pending=%d, dispatched=%d)" % (
            self.pending,
            self.dispatched,
        )


# ----------------------------------------------------------------------
# virtual-clock discrete-event simulation
# ----------------------------------------------------------------------


class VirtualClock:
    """Simulated time for discrete-event delivery.

    The clock only moves when an event is delivered (to that event's
    arrival instant) or when a blocking wait times out (to the waiter's
    deadline) — never from the host's wall clock.  That is what makes a
    DES run deterministic: the same seed produces the same event order
    and the same final ``now`` on any machine, at any host speed.
    """

    __slots__ = ("now",)

    def __init__(self, start=0.0):
        #: Current simulated time, in seconds.
        self.now = float(start)

    def advance_to(self, instant):
        """Move time forward to ``instant``; moving backwards is a no-op
        (events are popped in arrival order, so an earlier instant means
        the clock already passed it)."""
        if instant > self.now:
            self.now = instant

    def advance(self, seconds):
        """Move time forward by a duration (e.g. a timed-out wait)."""
        if seconds > 0:
            self.now += seconds

    def __repr__(self):
        return "VirtualClock(now=%.6f)" % self.now


class LatencyModel:
    """Per-link delivery delay for the DES network.

    One-way delay of a frame =

    * ``rtt_ms / 2`` — the propagation base (the paper's §4 numbers are
      round-trip figures, so the model is configured in RTT terms:
      ``LatencyModel(rtt_ms=2.8)`` reproduces the 1986 locate+RPC era);
    * ``+ len(packed frame) / bytes_per_sec`` — serialization, when a
      bandwidth is configured (None skips the pack entirely);
    * ``+ uniform(0, jitter_ms)`` — drawn from a *seeded* private RNG, so
      jitter varies per frame yet the whole run stays reproducible.

    The model is per-frame: it does not model link occupancy (two frames
    sent at the same instant both arrive one delay later, rather than
    queueing behind each other).  That is the standard message-passing
    model of distributed-system theory — per-link delivery delays,
    independent frames.
    """

    __slots__ = ("rtt_ms", "one_way", "jitter", "bytes_per_sec", "_rng")

    def __init__(self, rtt_ms=2.8, jitter_ms=0.0, bytes_per_sec=None, seed=0):
        if rtt_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies cannot be negative")
        self.rtt_ms = rtt_ms
        self.one_way = rtt_ms / 2000.0
        self.jitter = jitter_ms / 1000.0
        self.bytes_per_sec = bytes_per_sec
        self._rng = random.Random(seed)

    def delay(self, frame):
        """One-way delivery delay for ``frame``, in virtual seconds."""
        d = self.one_way
        if self.bytes_per_sec:
            d += len(frame.message.pack()) / self.bytes_per_sec
        if self.jitter:
            d += self._rng.random() * self.jitter
        return d

    def __repr__(self):
        return "LatencyModel(rtt_ms=%g, jitter_ms=%g)" % (
            self.rtt_ms,
            self.jitter * 1000.0,
        )


class VirtualTimeLoop:
    """Time-ordered frame delivery for a DES :class:`SimNetwork`.

    Created by ``SimNetwork(clock=VirtualClock(), latency=...)``; not
    normally constructed directly.  ``send`` becomes a :meth:`schedule`
    (arrival instant = ``clock.now + latency.delay(frame)``, pushed onto
    a heap) and :meth:`pump` pops events in arrival order, advancing the
    clock to each event's instant before delivering it.

    Semantics
    ---------
    * **Admission is decided at schedule time** against the routing index
      (same contract as :class:`EventLoop`), and **re-checked at
      delivery**: a listener that withdrew its GET — or a machine that
      detached — while the frame was "on the wire" drops it
      (``dropped_dead``), exactly like a packet addressed to a dead host.
    * **Ties break by schedule order.**  The heap key is
      ``(arrival, seq)``, so two frames arriving at the same instant
      deliver in the order they were sent — with zero jitter, per-link
      FIFO holds; with jitter, frames may overtake each other, which is
      the reordering a real network exhibits.
    * **Re-entrant stepping is allowed.**  A handler that blocks in a
      timed poll mid-delivery (a server acting as a client of another
      server) steps the same heap from inside :meth:`pump`; the event it
      pops was going to be delivered anyway, just deeper in the stack.
      This is how nested transactions consume virtual time correctly.
    """

    __slots__ = (
        "network",
        "clock",
        "latency",
        "_events",
        "_seq",
        "scheduled",
        "dispatched",
        "dropped_dead",
        "timers_fired",
    )

    def __init__(self, network, clock, latency):
        self.network = network
        self.clock = clock
        self.latency = latency
        # Heap of (arrival instant, schedule seq, is_broadcast, frame).
        # Timer events reuse the slots as (instant, seq, _TIMER, action).
        self._events = []
        self._seq = 0
        #: Frames given an arrival instant by schedule().
        self.scheduled = 0
        #: Events popped and handed to delivery.
        self.dispatched = 0
        #: Frames admitted at schedule time but undeliverable on arrival.
        self.dropped_dead = 0
        #: Timer callbacks fired by call_at().
        self.timers_fired = 0

    # ------------------------------------------------------------------
    # ingress (called by SimNetwork)
    # ------------------------------------------------------------------

    def schedule(self, frame, broadcast=False, extra=0.0):
        """Give one frame an arrival instant; returns that instant.

        ``extra`` adds virtual seconds on top of the latency model — the
        hook fault-injected delays (:mod:`repro.net.faults`) use, so a
        delayed frame consumes simulated time exactly like a slow link
        would, and the run stays deterministic.
        """
        arrival = self.clock.now + self.latency.delay(frame) + extra
        self._seq += 1
        heappush(self._events, (arrival, self._seq, broadcast, frame))
        self.scheduled += 1
        return arrival

    def call_at(self, instant, action):
        """Schedule ``action()`` to fire when virtual time reaches
        ``instant`` (clamped to now — time never runs backwards).

        Timers share the event heap with frames, so they fire in strict
        arrival order *wherever* the heap is being stepped — including
        from inside a blocking client poll, which is what lets a chaos
        timeline cut a link in the middle of someone's transaction.
        Returns the (possibly clamped) fire instant.
        """
        instant = max(instant, self.clock.now)
        self._seq += 1
        heappush(self._events, (instant, self._seq, _TIMER, action))
        return instant

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def step(self, until=None):
        """Deliver the earliest pending event, advancing the clock to its
        arrival instant.  Returns True if an event was delivered; False
        when nothing is pending or the next arrival lies beyond
        ``until`` (the clock is then left untouched — the caller owns
        the decision to burn the remaining wait)."""
        events = self._events
        if not events:
            return False
        if until is not None and events[0][0] > until:
            return False
        arrival, _, kind, payload = heappop(events)
        self.clock.advance_to(arrival)
        if kind is _TIMER:
            self.timers_fired += 1
            payload()
            return True
        self.dispatched += 1
        network = self.network
        if kind:
            network._deliver_broadcast(payload)
            return True
        if network._deliver_frame(payload):
            network.frames_delivered += 1
        else:
            self.dropped_dead += 1
            network.frames_dropped += 1
        return True

    def pump(self, budget=None, until=None):
        """Deliver up to ``budget`` events (all if None) whose arrival is
        within ``until`` (unbounded if None); returns the number
        delivered.  Events scheduled by handlers *during* the pump join
        the heap and are delivered in arrival order like any other."""
        delivered = 0
        while (budget is None or delivered < budget) and self.step(until):
            delivered += 1
        return delivered

    def run(self):
        """Drain every pending event; returns the number delivered."""
        return self.pump()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def pending(self):
        """Frames currently in flight on the simulated wire."""
        return len(self._events)

    def next_arrival(self):
        """The earliest pending arrival instant, or None when idle."""
        return self._events[0][0] if self._events else None

    def stats(self):
        """Scheduler counters as a dict (stable keys for benchmarks)."""
        return {
            "pending": self.pending,
            "scheduled": self.scheduled,
            "dispatched": self.dispatched,
            "dropped_dead": self.dropped_dead,
            "timers_fired": self.timers_fired,
            "virtual_now": self.clock.now,
        }

    def reset_stats(self):
        """Zero the counters (in-flight frames stay scheduled; the clock
        keeps its instant — time never runs backwards)."""
        self.scheduled = 0
        self.dispatched = 0
        self.dropped_dead = 0

    def __repr__(self):
        return "VirtualTimeLoop(now=%.6f, pending=%d)" % (
            self.clock.now,
            self.pending,
        )
