"""Client-side stub for talking to object servers.

A :class:`ServiceClient` binds a station to one service's put-port and
turns RPC replies with error status back into the same exceptions the
server raised — so calling a server through the network feels exactly
like calling its object table directly.
"""

from repro.core.rights import Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    PartitionSuspected,
    RPCTimeout,
    SecurityError,
    code_to_error,
)
from repro.ipc import stdops
from repro.ipc.rpc import trans
from repro.net.message import Message


class ServiceClient:
    """Blocking client for one service.

    Parameters
    ----------
    node:
        The client's station.
    put_port:
        The service's public put-port (usually ``capability.port``).
    expect_signature:
        The service's published F(S); when given, unsigned or forged
        replies are discarded (§2.2 digital signatures).
    locator:
        Optional :class:`~repro.ipc.locate.Locator` used to resolve the
        put-port to a machine for unicast sends.
    """

    def __init__(
        self,
        node,
        put_port,
        rng=None,
        expect_signature=None,
        locator=None,
        timeout=2.0,
        sealer=None,
        signature=None,
        retry=None,
    ):
        self.node = node
        self.put_port = put_port
        self.rng = rng or RandomSource()
        self.expect_signature = expect_signature
        self.locator = locator
        self.timeout = timeout
        #: Optional :class:`~repro.ipc.rpc.RetryPolicy` applied to every
        #: call — at-least-once transactions; pair with a server-side
        #: ReplyCache when the operations are not idempotent.
        self.retry = retry
        #: The client's own signature secret S (a PrivatePort).  Sent in
        #: the signature field so servers that authenticate senders can
        #: match the published image F(S).
        self.signature = signature
        #: §2.4 software protection: encrypt capabilities per destination
        #: machine.  Sealing needs the destination machine, so a sealer
        #: requires a locator.
        self.sealer = sealer
        if sealer is not None and locator is None:
            raise ValueError("capability sealing requires a locator")

    def call(
        self,
        command,
        capability=None,
        data=b"",
        offset=0,
        size=0,
        extra_caps=(),
    ):
        """Perform one transaction; raises the server's error on failure."""
        request = Message(
            command=command,
            capability=capability,
            data=data,
            offset=offset,
            size=size,
            extra_caps=tuple(extra_caps),
        )
        dst_machine = None
        if self.locator is not None:
            dst_machine = self.locator.locate(self.put_port)
        if self.sealer is not None:
            if getattr(dst_machine, "is_replica_set", False):
                # Sealing is per destination machine: bind the call to
                # the policy's first choice.  (Failover would need a
                # re-seal per candidate; a sealed deployment trades it
                # for the §2.4 cache economics.)
                members = dst_machine.select(
                    capability.object if capability is not None else None
                )
                dst_machine = members[0] if members else None
            request = self.sealer.seal_message(request, dst_machine)
        try:
            reply = trans(
                self.node,
                self.put_port,
                request,
                rng=self.rng,
                timeout=self.timeout,
                expect_signature=self.expect_signature,
                dst_machine=dst_machine,
                signature=self.signature,
                retry=self.retry,
                locator=self.locator,
            )
        except RPCTimeout as exc:
            if self.locator is not None:
                if isinstance(exc, PartitionSuspected):
                    # The whole pool went silent at once: keep nothing
                    # warm, but also *remember* the suspicion so the
                    # next locate re-broadcasts — the heal is observed
                    # by the HERE answer coming back.
                    self.locator.suspect(self.put_port)
                # The cached mapping may be the whole problem — a crashed
                # or migrated server (with a replica set, trans already
                # forgot each dead member on the way here, so this drops
                # whatever husk remains).  Invalidate so the caller's
                # next attempt re-broadcasts LOCATE instead of hammering
                # the dark machine.
                self.locator.invalidate(self.put_port)
            raise
        if reply.sealed_caps:
            if self.sealer is None:
                raise SecurityError(
                    "server sent sealed capabilities but this client has no sealer"
                )
            reply = self.sealer.unseal_message(reply, dst_machine)
        if reply.status != 0:
            raise code_to_error(reply.status, reply.data.decode("utf-8", "replace"))
        return reply

    # ------------------------------------------------------------------
    # the standard operations every server offers
    # ------------------------------------------------------------------

    def info(self, capability):
        """STD_INFO: a one-line description of the object."""
        return self.call(stdops.STD_INFO, capability=capability).data.decode("utf-8")

    def restrict(self, capability, keep_mask):
        """STD_RESTRICT: fabricate a sub-capability server-side (§2.3).

        This is the explicit round-trip the commutative scheme avoids.
        """
        reply = self.call(
            stdops.STD_RESTRICT, capability=capability, size=int(Rights(keep_mask))
        )
        return reply.capability

    def refresh(self, capability):
        """STD_REFRESH: revoke all outstanding capabilities for the object.

        The client-side half of revocation hygiene: every sealed form of
        the now-dead capabilities is purged from this client's §2.4
        cache, so later seals of the fresh capability cannot collide
        with stale triples (the server purges its own caches through the
        object table's revocation hook).
        """
        reply = self.call(stdops.STD_REFRESH, capability=capability)
        if self.sealer is not None:
            self.sealer.invalidate_object(capability.port, capability.object)
        return reply.capability

    def destroy(self, capability):
        """STD_DESTROY: delete the object."""
        self.call(stdops.STD_DESTROY, capability=capability)
        if self.sealer is not None:
            self.sealer.invalidate_object(capability.port, capability.object)

    def touch(self, capability):
        """STD_TOUCH: validate and mark the object as recently used."""
        self.call(stdops.STD_TOUCH, capability=capability)

    def __repr__(self):
        return "ServiceClient(port=%012x)" % self.put_port.value
