"""Replicated services: one logical put-port, N full server processes.

The paper's services are *logical* entities named by a sparse-capability
port — nothing in §2 ties a port to one machine.  This module makes the
binding plural end to end:

* :class:`ReplicaSet` — the value a locate now resolves to: an ordered
  pool of machine addresses plus a *spread policy* (round-robin, or a
  rendezvous hash on the object number so every client computes the same
  per-object home replica without coordination).
* :class:`ReplicaRegistry` + :func:`install_replica_locate_responder` —
  the membership side: replicas join/leave a port's pool, LOCATE
  broadcasts are answered with the whole pool (wire-compatible with the
  legacy single-machine HERE).
* :class:`ReplicaObjectServer` — a full :class:`ObjectServer` data plane
  that additionally *fans out* every revocation (STD_REFRESH,
  STD_DESTROY, aging) to its peer replicas over a signature-
  authenticated control channel, so a capability revoked anywhere is
  rejected everywhere — including each replica's §2.4 caches, which are
  purged through the same ``on_revocation`` hook a local revocation
  fires.  The fan-out is at-least-once (:class:`RetryPolicy`) and the
  application side (:meth:`ObjectTable.apply_refresh` /
  :meth:`~ObjectTable.apply_destroy`) is generation-guarded and
  idempotent, so duplicates and reordering are harmless.
* :class:`ReplicatedObjectServer` — the in-process (SimNetwork) pool:
  N replica servers sharing one get-port/signature, objects mirrored at
  creation.  Deterministic; this is where the fault-injection tests run.
* :class:`ReplicaPool` — the real thing: N OS processes over loopback
  UDP (the PR 3 fork pattern), each with a *data* station serving the
  logical port and a *control* station for outbound fan-out (a server
  handler runs on its station's pump thread, so a blocking peer
  transaction must leave through a second station or it would deadlock
  waiting on its own pump).  Replicas register with the arbiter's
  registry over the socket control lane (join/leave/health).

Failover contract (the part clients rely on): ``trans`` against a
ReplicaSet tries candidates in policy order and fails over on
RPCTimeout, telling the locator to forget *only* the dead member.  Each
replica runs its own PR 6 ReplyCache, so a retry that lands on the
replica that already executed replays the cached reply — at-least-once
across the pool, never double-executed on any one replica.
"""

import hashlib
import itertools
import json
import struct
import threading

from repro.core.ports import PORT_BYTES, Port, PrivatePort, as_port
from repro.core.registry import ObjectEntry
from repro.crypto.randomsrc import RandomSource
from repro.errors import BadRequest, PortNotLocated, RPCTimeout, SecurityError
from repro.ipc import stdops
from repro.ipc.rpc import RetryPolicy, trans
from repro.ipc.server import ObjectServer, command
from repro.net.message import Message

#: Spread policies a :class:`ReplicaSet` understands.
ROUND_ROBIN = "round_robin"
RENDEZVOUS = "rendezvous"

_POLICY_CODES = {ROUND_ROBIN: 0, RENDEZVOUS: 1}
_POLICY_NAMES = {code: name for name, code in _POLICY_CODES.items()}


# ----------------------------------------------------------------------
# machine / replica-set wire codec
# ----------------------------------------------------------------------
#
# Machines are ints on the simulators and (host, udp_port) pairs over
# sockets; HERE answers and membership messages need both on the wire.
# Tagged encoding: 0x01 + u64 for ints, 0x02 + len + host + u16 port.


def pack_machine(machine):
    if isinstance(machine, int):
        if machine < 0:
            raise ValueError("machine numbers are non-negative")
        return b"\x01" + machine.to_bytes(8, "big")
    host, port = machine
    raw = host.encode("utf-8")
    if len(raw) > 255:
        raise ValueError("host name too long to encode")
    return b"\x02" + bytes((len(raw),)) + raw + int(port).to_bytes(2, "big")


def _unpack_machine(data, pos):
    if pos >= len(data):
        raise ValueError("truncated machine encoding")
    tag = data[pos]
    pos += 1
    if tag == 0x01:
        if pos + 8 > len(data):
            raise ValueError("truncated machine number")
        return int.from_bytes(data[pos:pos + 8], "big"), pos + 8
    if tag == 0x02:
        if pos >= len(data):
            raise ValueError("truncated host length")
        hlen = data[pos]
        pos += 1
        if pos + hlen + 2 > len(data):
            raise ValueError("truncated host address")
        host = data[pos:pos + hlen].decode("utf-8")
        pos += hlen
        port = int.from_bytes(data[pos:pos + 2], "big")
        return (host, port), pos + 2
    raise ValueError("unknown machine tag %d" % tag)


def pack_here_payload(port, replicas):
    """The extended HERE body: port, policy, member count, members.

    Deliberately longer than :data:`PORT_BYTES` even for one member, so
    :class:`~repro.ipc.locate.Locator` can tell it from the legacy
    single-machine form by length alone.
    """
    members = tuple(replicas)
    if len(members) > 255:
        raise ValueError("replica set too large to encode")
    parts = [
        port.to_bytes(),
        bytes((_POLICY_CODES[replicas.policy],)),
        bytes((len(members),)),
    ]
    parts.extend(pack_machine(m) for m in members)
    return b"".join(parts)


def unpack_here_payload(data):
    """Inverse of :func:`pack_here_payload`; raises ValueError on any
    framing defect (the locator then ignores the answer)."""
    if len(data) < PORT_BYTES + 2:
        raise ValueError("HERE payload too short for a replica set")
    port = Port.from_bytes(data[:PORT_BYTES])
    policy_code = data[PORT_BYTES]
    count = data[PORT_BYTES + 1]
    policy = _POLICY_NAMES.get(policy_code)
    if policy is None:
        raise ValueError("unknown spread policy code %d" % policy_code)
    members = []
    pos = PORT_BYTES + 2
    for _ in range(count):
        machine, pos = _unpack_machine(data, pos)
        members.append(machine)
    if pos != len(data):
        raise ValueError("trailing bytes after replica set")
    return port, ReplicaSet(members, policy=policy)


def pack_membership(port, machine):
    """JOIN/LEAVE control payload: which machine serves which port."""
    return port.to_bytes() + pack_machine(machine)


def unpack_membership(payload):
    if len(payload) < PORT_BYTES + 1:
        raise ValueError("membership payload too short")
    port = Port.from_bytes(payload[:PORT_BYTES])
    machine, pos = _unpack_machine(payload, PORT_BYTES)
    if pos != len(payload):
        raise ValueError("trailing bytes after membership record")
    return port, machine


# Scheme secrets are ints (check-field schemes) or raw bytes (encrypted
# rights); the refresh fan-out has to carry either.
def _pack_secret(secret):
    if isinstance(secret, int):
        width = max(1, (secret.bit_length() + 7) // 8)
        return b"\x01" + width.to_bytes(2, "big") + secret.to_bytes(width, "big")
    raw = bytes(secret)
    return b"\x02" + len(raw).to_bytes(2, "big") + raw


def _unpack_secret(data, pos):
    if pos + 3 > len(data):
        raise ValueError("truncated secret encoding")
    tag = data[pos]
    width = int.from_bytes(data[pos + 1:pos + 3], "big")
    pos += 3
    if pos + width > len(data):
        raise ValueError("truncated secret body")
    body = data[pos:pos + width]
    pos += width
    if tag == 0x01:
        return int.from_bytes(body, "big"), pos
    if tag == 0x02:
        return bytes(body), pos
    raise ValueError("unknown secret tag %d" % tag)


_REVOKE_HEAD = struct.Struct(">II")  # object number, generation


def pack_refresh_payload(number, generation, secret):
    return _REVOKE_HEAD.pack(number, generation) + _pack_secret(secret)


def unpack_refresh_payload(data):
    number, generation = _REVOKE_HEAD.unpack_from(data)
    secret, pos = _unpack_secret(data, _REVOKE_HEAD.size)
    if pos != len(data):
        raise ValueError("trailing bytes after refresh payload")
    return number, generation, secret


def pack_destroy_payload(number, generation):
    return _REVOKE_HEAD.pack(number, generation)


def unpack_destroy_payload(data):
    if len(data) != _REVOKE_HEAD.size:
        raise ValueError("bad destroy payload length")
    return _REVOKE_HEAD.unpack(data)


# ----------------------------------------------------------------------
# the replica set
# ----------------------------------------------------------------------


def _rendezvous_weight(member, key):
    """Highest-random-weight score for (member, key).

    Uses a real hash, never Python's ``hash()``: per-process hash
    randomization would give every client process a different per-object
    home replica, which is exactly the affinity the policy exists to
    provide.  ``repr`` of an int or a (host, port) pair is stable across
    processes and Python versions.
    """
    digest = hashlib.blake2b(
        repr(member).encode("utf-8") + b"|" + repr(key).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


class ReplicaSet:
    """An ordered pool of machines serving one logical port.

    Immutable (``without`` returns a new set) except for the round-robin
    cursor, whose ``next()`` is atomic under the GIL — many client
    threads may share one cached ReplicaSet.  An *empty* set is legal
    (it is what member-wise invalidation can leave behind) and simply
    selects nothing.
    """

    #: Duck-typing marker: rpc/locate test this attribute instead of
    #: importing the class, keeping the layering acyclic.
    is_replica_set = True

    __slots__ = ("members", "policy", "_cursor")

    def __init__(self, members, policy=ROUND_ROBIN):
        if policy not in _POLICY_CODES:
            raise ValueError("unknown spread policy %r" % (policy,))
        self.members = tuple(members)
        self.policy = policy
        self._cursor = itertools.count()

    def select(self, key=None):
        """Candidates in preference order for one transaction.

        ``rendezvous`` with a key ranks members by highest random
        weight — every process computes the same order, so per-object
        affinity survives across clients, and the runner-up list doubles
        as the failover order.  ``round_robin`` (or a keyless rendezvous
        lookup) rotates the start point per call.
        """
        members = self.members
        if not members:
            return []
        if self.policy == RENDEZVOUS and key is not None:
            return sorted(
                members,
                key=lambda m: _rendezvous_weight(m, key),
                reverse=True,
            )
        start = next(self._cursor) % len(members)
        return list(members[start:]) + list(members[:start])

    def without(self, machine):
        """A new set minus one (dead) member; same policy."""
        return ReplicaSet(
            tuple(m for m in self.members if m != machine), policy=self.policy
        )

    def __contains__(self, machine):
        return machine in self.members

    def __iter__(self):
        return iter(self.members)

    def __len__(self):
        return len(self.members)

    def __eq__(self, other):
        if not isinstance(other, ReplicaSet):
            return NotImplemented
        return self.members == other.members and self.policy == other.policy

    def __repr__(self):
        return "ReplicaSet(%r, policy=%r)" % (list(self.members), self.policy)


# ----------------------------------------------------------------------
# membership
# ----------------------------------------------------------------------


class ReplicaRegistry:
    """Thread-safe port → replica membership, for locate responders.

    Members keep join order (that order *is* the round-robin sequence
    every client sees in HERE answers).  ``replica_set`` snapshots are
    fresh objects, so a client mutating nothing can cache them safely.
    """

    def __init__(self, policy=ROUND_ROBIN):
        if policy not in _POLICY_CODES:
            raise ValueError("unknown spread policy %r" % (policy,))
        self.default_policy = policy
        self._lock = threading.Lock()
        self._members = {}   # port -> list of machines (join order)
        self._policies = {}  # port -> policy override
        # port -> set of machines suspected unreachable (a partition
        # symptom, NOT a crash): suspicion is advisory — the member
        # keeps its membership (and its generation state) and is merely
        # steered around until unsuspected or re-joined.
        self._suspects = {}

    def join(self, port, machine, policy=None):
        port = as_port(port)
        with self._lock:
            members = self._members.setdefault(port, [])
            if machine not in members:
                members.append(machine)
            if policy is not None:
                self._policies[port] = policy
            # A (re)join is proof of reachability.
            suspects = self._suspects.get(port)
            if suspects is not None:
                suspects.discard(machine)
        return machine

    def leave(self, port, machine):
        port = as_port(port)
        with self._lock:
            members = self._members.get(port)
            if members is None or machine not in members:
                return False
            members.remove(machine)
            if not members:
                del self._members[port]
            suspects = self._suspects.get(port)
            if suspects is not None:
                suspects.discard(machine)
                if not suspects:
                    del self._suspects[port]
        return True

    def suspect(self, port, machine):
        """Mark a *member* as unreachable-but-not-evicted.  Unknown
        machines are ignored (suspicion cannot invent members)."""
        port = as_port(port)
        with self._lock:
            members = self._members.get(port)
            if members is None or machine not in members:
                return False
            self._suspects.setdefault(port, set()).add(machine)
        return True

    def unsuspect(self, port, machine):
        """Clear one suspicion (the member answered again)."""
        port = as_port(port)
        with self._lock:
            suspects = self._suspects.get(port)
            if suspects is None or machine not in suspects:
                return False
            suspects.discard(machine)
            if not suspects:
                del self._suspects[port]
        return True

    def suspected(self, port):
        """The currently-suspected members of ``port`` (a fresh tuple,
        in join order)."""
        port = as_port(port)
        with self._lock:
            suspects = self._suspects.get(port)
            if not suspects:
                return ()
            return tuple(m for m in self._members.get(port, ())
                         if m in suspects)

    def members(self, port):
        with self._lock:
            return tuple(self._members.get(as_port(port), ()))

    def replica_set(self, port):
        """A fresh :class:`ReplicaSet` for ``port``, or None.

        Suspected members are steered around — omitted from the set —
        *unless* that would leave it empty: suspicion is advisory, and
        an all-suspected pool must still be tried (the suspicion may be
        our side of the partition, not theirs)."""
        port = as_port(port)
        with self._lock:
            members = self._members.get(port)
            if not members:
                return None
            policy = self._policies.get(port, self.default_policy)
            suspects = self._suspects.get(port)
            if suspects:
                trusted = tuple(m for m in members if m not in suspects)
                if trusted:
                    return ReplicaSet(trusted, policy=policy)
            return ReplicaSet(tuple(members), policy=policy)

    def ports(self):
        with self._lock:
            return tuple(self._members)

    def __len__(self):
        with self._lock:
            return len(self._members)


def install_replica_locate_responder(nic, registry, alive=None):
    """Answer LOCATE broadcasts with the port's *whole replica pool*.

    The replica-aware counterpart of
    :func:`repro.ipc.locate.install_locate_responder`: instead of "I am
    here", the answer is the packed replica set from ``registry``.
    ``alive`` (an optional zero-argument callable) gates the responder —
    a stopped replica must fall silent even though its broadcast hook
    cannot be unregistered.
    """

    def responder(frame):
        message = frame.message
        if message.command != stdops.LOCATE:
            return
        if alive is not None and not alive():
            return
        try:
            target = Port.from_bytes(message.data)
        except ValueError:
            return
        replicas = registry.replica_set(target)
        if replicas is None or not len(replicas):
            return
        here = Message(
            dest=message.reply,
            command=stdops.HERE,
            data=pack_here_payload(target, replicas),
            is_reply=True,
        )
        nic.put(here, dst_machine=frame.src)

    nic.on_broadcast(responder)
    return responder


def install_membership_handler(node, registry):
    """Wire a station's control lane (JOIN/LEAVE datagrams) into a
    registry — the arbiter side of replica registration over sockets."""
    from repro.net.sockets import CTL_JOIN, CTL_LEAVE

    def handler(kind, payload, _src):
        if kind != CTL_JOIN and kind != CTL_LEAVE:
            return
        try:
            port, machine = unpack_membership(payload)
        except ValueError:
            return
        if kind == CTL_JOIN:
            registry.join(port, machine)
        else:
            registry.leave(port, machine)

    node.on_control(handler)
    return handler


def probe_liveness(node, dst, timeout=1.0, token=None):
    """One control-lane PING round trip; True when the pong arrives.

    The pong is answered by the *station* (its pump), not by any server
    — this reports "the OS process and its pump are alive", the cheapest
    health signal the pool's arbiter can ask for.
    """
    import os

    from repro.net.sockets import CTL_PING, CTL_PONG

    if token is None:
        token = os.urandom(8)
    event = threading.Event()

    def handler(kind, payload, _src):
        if kind == CTL_PONG and payload == token:
            event.set()

    node.on_control(handler)
    try:
        node.send_control(CTL_PING, token, dst)
        return event.wait(timeout)
    finally:
        node.off_control(handler)


# ----------------------------------------------------------------------
# the replica-aware server
# ----------------------------------------------------------------------


class ReplicaObjectServer(ObjectServer):
    """A full ObjectServer that fans revocations out to its peers.

    ``peers`` are machine addresses of the sibling replicas (same
    get-port, same signature secret).  ``control_node`` is the station
    used for *outbound* peer transactions; it defaults to the data
    station, which is correct on the synchronous simulator (nested
    delivery) but must be a second station over sockets — a handler runs
    on the data station's pump thread, and a blocking transaction from
    there would wait on the very pump it is occupying.

    Control messages authenticate by signature image: replicas share the
    service's signature secret S, the F-box one-ways it on egress, and
    the receiving handler compares against the published F(S).  Only an
    S-holder can produce that image through the F-box (§2.2).
    """

    service_name = "replica object server"

    def __init__(self, node, peers=(), control_node=None, fanout_retry=None,
                 fanout_timeout=2.0, **kwargs):
        kwargs.setdefault("dedup", True)
        super().__init__(node, **kwargs)
        self.peers = list(peers)
        self.control_node = control_node if control_node is not None else node
        self.fanout_retry = (
            fanout_retry if fanout_retry is not None
            else RetryPolicy(attempts=3, rto=0.05, cap=0.4, seed=0)
        )
        self.fanout_timeout = fanout_timeout
        #: F(S): what a peer's control message must carry to be obeyed.
        self.control_image = self.signature.public
        #: Fan-out bookkeeping: successful peer applications, and
        #: (machine, op, number) triples that exhausted their retries.
        self.fanout_sent = 0
        self.fanout_failures = []
        # Full (peer, opcode, payload, op_name, number) records of those
        # same failures, kept until reconcile() re-delivers them — the
        # repair queue a healed partition is drained through.
        self._fanout_pending = []

    # -- outbound fan-out ----------------------------------------------

    def _fan_out(self, opcode, payload, op_name, number):
        """Tell every peer to apply one revocation; at-least-once per
        peer, failures recorded rather than raised — the *local*
        revocation has already happened and must be reported to the
        client regardless (the capability is dead here; a lagging peer
        is a liveness problem, not a correctness rollback)."""
        for peer in self.peers:
            if self._send_control(peer, opcode, payload):
                self.fanout_sent += 1
            else:
                self.fanout_failures.append((peer, op_name, number))
                self._fanout_pending.append(
                    (peer, opcode, payload, op_name, number)
                )

    def _send_control(self, peer, opcode, payload):
        request = Message(command=opcode, data=payload)
        try:
            trans(
                self.control_node,
                self.put_port,
                request,
                rng=self.rng,
                timeout=self.fanout_timeout,
                expect_signature=self.control_image,
                dst_machine=peer,
                signature=self.signature,
                retry=self.fanout_retry,
            )
        except (RPCTimeout, PortNotLocated):
            return False
        return True

    def reconcile(self):
        """Re-drive every fan-out that failed (e.g. across a partition).

        The peer-side CTL_APPLY handlers are generation-guarded and
        idempotent, so re-delivery after heal is safe however many times
        it takes.  Still-unreachable peers stay queued for the next
        call.  Returns the number of repairs delivered.
        ``fanout_failures`` is left intact as the historical record."""
        pending, self._fanout_pending = self._fanout_pending, []
        repaired = 0
        for record in pending:
            peer, opcode, payload, _op_name, _number = record
            if self._send_control(peer, opcode, payload):
                self.fanout_sent += 1
                repaired += 1
            else:
                self._fanout_pending.append(record)
        return repaired

    @property
    def fanout_pending(self):
        """Count of failed fan-outs awaiting :meth:`reconcile`."""
        return len(self._fanout_pending)

    @command(stdops.STD_REFRESH)
    def _std_refresh(self, ctx):
        if ctx.capability is None:
            raise BadRequest("REFRESH requires a capability")
        fresh = self.table.refresh(ctx.capability, required=self.admin_rights)
        entry = self.table._entry(fresh.object)
        self._fan_out(
            stdops.CTL_APPLY_REFRESH,
            pack_refresh_payload(entry.number, entry.generation, entry.secret),
            "refresh",
            entry.number,
        )
        return ctx.ok(capability=fresh)

    @command(stdops.STD_DESTROY)
    def _std_destroy(self, ctx):
        if ctx.capability is None:
            raise BadRequest("DESTROY requires a capability")
        entry, _ = self.table.lookup(ctx.capability, self.admin_rights)
        self.on_destroy(entry)
        self.table.destroy(ctx.capability, required=self.admin_rights)
        self._fan_out(
            stdops.CTL_APPLY_DESTROY,
            pack_destroy_payload(entry.number, entry.generation),
            "destroy",
            entry.number,
        )
        return ctx.ok()

    def sweep(self):
        """Aging is a revocation too: expiries propagate to the peers
        (whose own sweeps may lag — apply_destroy is idempotent when
        both sides expire the same object)."""
        expired = super().sweep()
        for entry in expired:
            self._fan_out(
                stdops.CTL_APPLY_DESTROY,
                pack_destroy_payload(entry.number, entry.generation),
                "age",
                entry.number,
            )
        return expired

    # -- inbound control commands --------------------------------------

    def _authorize_control(self, ctx):
        if ctx.request.signature != self.control_image:
            raise SecurityError(
                "replica control requires the service signature"
            )

    @command(stdops.CTL_APPLY_REFRESH)
    def _ctl_apply_refresh(self, ctx):
        self._authorize_control(ctx)
        number, generation, secret = unpack_refresh_payload(ctx.request.data)
        applied = self.table.apply_refresh(number, secret, generation)
        return ctx.ok(data=b"\x01" if applied else b"\x00")

    @command(stdops.CTL_APPLY_DESTROY)
    def _ctl_apply_destroy(self, ctx):
        self._authorize_control(ctx)
        number, _generation = unpack_destroy_payload(ctx.request.data)
        applied = self.table.apply_destroy(number)
        return ctx.ok(data=b"\x01" if applied else b"\x00")

    @command(stdops.CTL_HEALTH)
    def _ctl_health(self, ctx):
        stats = {
            "service": self.service_name,
            "objects": len(self.table),
            "peers": len(self.peers),
            "fanout_sent": self.fanout_sent,
            "fanout_failures": len(self.fanout_failures),
            "fanout_pending": self.fanout_pending,
        }
        if self.reply_cache is not None:
            stats["dedup"] = self.reply_cache.stats()
        return ctx.ok(data=json.dumps(stats, sort_keys=True).encode("utf-8"))


# ----------------------------------------------------------------------
# the in-process pool (SimNetwork)
# ----------------------------------------------------------------------


class ReplicatedObjectServer:
    """N replica servers on one simulated network, one logical port.

    The coordinator draws the shared secrets (get-port G, signature S),
    builds one :class:`ReplicaObjectServer` per replica on its own
    station, cross-wires the peer lists, registers every member in a
    :class:`ReplicaRegistry`, and installs a replica-aware locate
    responder on each station (any survivor can answer for the pool).

    :meth:`create` mints objects on replica 0 and mirrors the row to the
    others, so one capability validates everywhere — the replicated-
    state story here is "shared secret, mirrored rows", which is all the
    paper's capability checks need; data mutation consistency is the
    *service's* problem, as it is in Amoeba.
    """

    def __init__(self, network, replicas=4, scheme=None, rng=None,
                 policy=ROUND_ROBIN, server_cls=ReplicaObjectServer,
                 registry=None, fanout_retry=None, fanout_timeout=2.0,
                 server_kwargs=None):
        from repro.net.nic import Nic

        if replicas < 1:
            raise ValueError("a replicated service needs at least one replica")
        self.network = network
        self.rng = rng or RandomSource()
        self.get_port = PrivatePort.generate(self.rng)
        self.signature = PrivatePort.generate(self.rng)
        self.put_port = self.get_port.public
        self.policy = policy
        self.registry = registry if registry is not None else ReplicaRegistry()
        kwargs = dict(server_kwargs or ())
        scheme_obj = scheme
        if scheme_obj is None:
            from repro.core.schemes import XorOneWayScheme

            scheme_obj = XorOneWayScheme()
        self.scheme = scheme_obj
        self.servers = []
        for _ in range(replicas):
            node = Nic(network)
            server = server_cls(
                node,
                scheme=self.scheme,
                rng=self.rng,
                get_port=self.get_port,
                signature=self.signature,
                fanout_retry=fanout_retry,
                fanout_timeout=fanout_timeout,
                **kwargs,
            )
            self.servers.append(server)
        machines = [server.node.address for server in self.servers]
        for server, machine in zip(self.servers, machines):
            server.peers = [m for m in machines if m != machine]
            self.registry.join(self.put_port, machine, policy=policy)
            install_replica_locate_responder(
                server.node, self.registry,
                alive=lambda s=server: s.running,
            )

    # -- lifecycle ------------------------------------------------------

    def start(self):
        for server in self.servers:
            server.start()
        return self

    def stop(self):
        for server in self.servers:
            if server.running:
                server.stop()

    def kill(self, index, leave_registry=False):
        """Crash one replica: it stops serving and answering, but stays
        in the registry by default — clients are supposed to *discover*
        the death through timeout and failover, exactly like a real
        crash.  ``leave_registry=True`` models a graceful drain."""
        server = self.servers[index]
        if server.running:
            server.stop()
        if leave_registry:
            self.registry.leave(self.put_port, server.node.address)
        return server

    # -- objects --------------------------------------------------------

    def create(self, data, rights=None):
        """Create an object on every replica; one owner capability."""
        primary = self.servers[0].table
        if rights is None:
            capability = primary.create(data)
        else:
            capability = primary.create(data, rights)
        entry = primary._entry(capability.object)
        for server in self.servers[1:]:
            server.table.restore_entry(
                ObjectEntry(
                    number=entry.number,
                    secret=entry.secret,
                    data=data,
                    generation=entry.generation,
                    lifetime=entry.lifetime,
                )
            )
        return capability

    def replica_set(self):
        return self.registry.replica_set(self.put_port)

    def reconcile(self):
        """Re-drive failed revocation fan-outs on every live replica —
        call after a partition heals; returns total repairs delivered."""
        return sum(
            server.reconcile() for server in self.servers if server.running
        )

    def __repr__(self):
        return "ReplicatedObjectServer(port=%012x, replicas=%d)" % (
            self.put_port.value, len(self.servers),
        )


# ----------------------------------------------------------------------
# the OS-process pool (loopback UDP)
# ----------------------------------------------------------------------


def _run_replica_child(conn, index, get_port, signature, scheme, seed_rows,
                       server_factory, buffer_egress):
    """Child process body (entered via fork): two stations + one server.

    Handshake: send (data_address) → receive (peer data addresses,
    arbiter address) → JOIN over the control lane → send "ready" →
    serve until the parent sends "stop" (or the process is killed).
    """
    from repro.net.sockets import CTL_JOIN, SocketNode

    data_node = SocketNode(buffer_egress=buffer_egress)
    control_node = SocketNode()
    server = server_factory(
        data_node,
        control_node=control_node,
        scheme=scheme,
        get_port=get_port,
        signature=signature,
        rng=RandomSource(b"replica-%d" % index),
    )
    for number, secret, data, generation in seed_rows:
        server.table.restore_entry(
            ObjectEntry(
                number=number, secret=secret, data=data, generation=generation,
            )
        )
    server.start()
    conn.send(data_node.address)
    peers, arbiter = conn.recv()
    server.peers = [peer for peer in peers if peer != data_node.address]
    control_node.send_control(
        CTL_JOIN, pack_membership(server.put_port, data_node.address), arbiter
    )
    conn.send("ready")
    try:
        conn.recv()  # blocks until "stop" (or EOF when the parent dies)
    except EOFError:
        pass
    server.stop()
    data_node.close()
    control_node.close()


class ReplicaPool:
    """N OS processes serving one logical port over loopback UDP.

    The parent populates a *template* object table (shared scheme,
    get-port, signature), snapshots its rows, and forks the children —
    each builds fresh stations post-fork (threads do not survive a
    fork), restores the rows, and serves.  Membership flows over the
    socket control lane to the parent's arbiter station, whose registry
    backs a replica-aware LOCATE responder; a client that connects to
    the arbiter and broadcasts LOCATE gets the whole pool back.

    ``kill(i)`` SIGKILLs a replica mid-flight — the failover scenario's
    crash. ``health(i)`` is a control-lane ping answered by the child's
    pump.
    """

    def __init__(self, replicas=4, objects=1, payload=b"",
                 server_factory=ReplicaObjectServer, scheme=None, rng=None,
                 policy=ROUND_ROBIN, buffer_egress=True, seed=b"replica-pool"):
        import multiprocessing

        from repro.core.registry import ObjectTable
        from repro.net.sockets import SocketNode

        if replicas < 1:
            raise ValueError("a pool needs at least one replica")
        self.rng = rng or RandomSource(seed)
        self.get_port = PrivatePort.generate(self.rng)
        self.signature = PrivatePort.generate(self.rng)
        self.put_port = self.get_port.public
        self.policy = policy
        scheme_obj = scheme
        if scheme_obj is None:
            from repro.core.schemes import XorOneWayScheme

            scheme_obj = XorOneWayScheme()
        self.scheme = scheme_obj
        # Template table: rows and owner capabilities drawn once in the
        # parent, inherited by every child through the fork snapshot.
        self.table = ObjectTable(scheme_obj, self.put_port, self.rng)
        self.capabilities = [
            self.table.create(payload) for _ in range(objects)
        ]
        seed_rows = self.table.snapshot_entries()
        ctx = multiprocessing.get_context("fork")
        self.processes = []
        self.pipes = []
        for index in range(replicas):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_run_replica_child,
                args=(child_conn, index, self.get_port, self.signature,
                      scheme_obj, seed_rows, server_factory, buffer_egress),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.processes.append(proc)
            self.pipes.append(parent_conn)
        self.addresses = [conn.recv() for conn in self.pipes]
        # Arbiter after the forks: its pump thread must not exist in the
        # children (threads die at fork; a pre-fork station would leave
        # the children inheriting its dead locks).
        self.registry = ReplicaRegistry(policy=policy)
        self.arbiter = SocketNode()
        install_membership_handler(self.arbiter, self.registry)
        install_replica_locate_responder(self.arbiter, self.registry)
        arbiter_addr = self.arbiter.address
        for conn in self.pipes:
            conn.send((list(self.addresses), arbiter_addr))
        for conn in self.pipes:
            assert conn.recv() == "ready"
        # JOINs travel the real control lane; wait for all of them.
        import time as _time

        deadline = _time.monotonic() + 5.0
        while (
            len(self.registry.members(self.put_port)) < replicas
            and _time.monotonic() < deadline
        ):
            _time.sleep(0.01)
        self.killed = set()

    def replica_set(self):
        """The pool as clients see it (from the arbiter's registry)."""
        replicas = self.registry.replica_set(self.put_port)
        if replicas is None:
            raise PortNotLocated("no replicas joined the pool")
        return replicas

    def health(self, index, timeout=1.0):
        """Control-lane ping to one replica's data station."""
        return probe_liveness(self.arbiter, self.addresses[index], timeout)

    def probe(self, index, timeout=1.0):
        """Health-check one replica and update the registry's suspicion
        state: a silent member is *suspected* (steered around, never
        evicted — its generation state is intact behind the partition),
        an answering one unsuspected.  Returns the ping verdict."""
        alive = self.health(index, timeout)
        machine = self.addresses[index]
        if alive:
            self.registry.unsuspect(self.put_port, machine)
        else:
            self.registry.suspect(self.put_port, machine)
        return alive

    def kill(self, index, leave_registry=False):
        """SIGKILL one replica (the crash in the failover scenario).
        The registry keeps the member unless ``leave_registry`` — death
        is for the clients to discover."""
        proc = self.processes[index]
        proc.kill()
        proc.join(timeout=5.0)
        self.killed.add(index)
        if leave_registry:
            self.registry.leave(self.put_port, self.addresses[index])

    def stop(self):
        for index, (proc, conn) in enumerate(zip(self.processes, self.pipes)):
            if index in self.killed:
                conn.close()
                continue
            try:
                conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            conn.close()
        self.arbiter.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()
        return False
