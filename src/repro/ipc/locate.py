"""Port location: broadcast LOCATE and the (port, machine) cache.

§2.2: "The associative addressing can be simulated in software ... by
having each one maintain a cache of (port, machine-number) pairs.  If a
port is not in the cache, it can be found by broadcasting a LOCATE
message."  The efficient generalisation is Mullender–Vitányi distributed
match-making; on a single broadcast segment the protocol below is the
exact mechanism the paper sketches.

The cache is what makes the economics work: a hit costs zero extra
frames, a miss costs one broadcast plus one HERE unicast.  The RPC
benchmarks count both.
"""

import threading

from repro.core.ports import Port, as_port
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated
from repro.ipc import stdops
from repro.net.message import Message


def install_locate_responder(nic):
    """Make a station answer LOCATE broadcasts for ports it serves.

    This is kernel functionality: it answers from the NIC's admission
    table, not from any user process.
    """

    def responder(frame):
        message = frame.message
        if message.command != stdops.LOCATE:
            return
        try:
            target = Port.from_bytes(message.data)
        except ValueError:
            return
        if not nic.admits(target):
            return
        here = Message(
            dest=message.reply,
            command=stdops.HERE,
            data=target.to_bytes(),
            is_reply=True,
        )
        nic.put(here, dst_machine=frame.src)

    nic.on_broadcast(responder)
    return responder


class ShardedLocationCache:
    """The (port, machine) map, partitioned into lock-striped shards.

    The locate cache is read-mostly: every transaction may consult it,
    while writes happen only on a LOCATE miss (one broadcast round trip
    away) and invalidations only when a server crashes or migrates.
    Reads are therefore lock-free — one dict probe on the owning shard,
    safe against concurrent writers because shard dicts are only ever
    mutated under that shard's lock and CPython dict reads are atomic —
    and writers (:meth:`put`, :meth:`invalidate`) take only the owning
    stripe, so invalidating one port never stalls lookups, or other
    invalidations, elsewhere.

    **Invalidation epochs.**  A locate is a broadcast round trip; its
    ``put`` can land long after the HERE frame was sent.  If a crash is
    detected in that window, a plain put would *resurrect* the mapping
    the invalidation just purged — the client then re-sends to a dead
    machine until someone notices again.  Each stripe therefore carries
    an epoch counter, bumped by every :meth:`invalidate` /
    :meth:`invalidate_member`; a caller snapshots :meth:`epoch` before
    broadcasting and passes it to :meth:`put`, which discards the write
    (returning False) when the stripe has been invalidated since.
    Values may be a single machine address or a replica set (any object
    with an ``is_replica_set`` attribute, see
    :class:`repro.ipc.replica.ReplicaSet`).
    """

    def __init__(self, shards=8):
        if shards < 1 or shards & (shards - 1):
            raise ValueError("shards must be a power of two >= 1")
        self._shards = [{} for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]
        self._mask = shards - 1
        # Per-stripe invalidation epochs.  Mutated only under the stripe
        # lock; read lock-free (int loads are atomic) by epoch().
        self._epochs = [0] * shards

    def _index(self, port):
        return port.value & self._mask

    def get(self, port):
        """The cached machine for ``port``, or None.  Lock-free."""
        return self._shards[port.value & self._mask].get(port)

    def epoch(self, port):
        """The owning stripe's invalidation epoch.  Lock-free; snapshot
        it *before* starting a locate and hand it to :meth:`put`."""
        return self._epochs[port.value & self._mask]

    def put(self, port, machine, epoch=None):
        """Install a mapping; with ``epoch``, only if the owning stripe
        has not been invalidated since that snapshot was taken.  Returns
        True when the mapping was stored."""
        index = self._index(port)
        with self._locks[index]:
            if epoch is not None and epoch != self._epochs[index]:
                return False
            self._shards[index][port] = machine
        return True

    def invalidate(self, port):
        """Per-shard invalidation: drops one mapping under one stripe
        and advances the stripe's epoch, so in-flight locates started
        before this point cannot resurrect the mapping."""
        index = self._index(port)
        with self._locks[index]:
            self._shards[index].pop(port, None)
            self._epochs[index] += 1

    def invalidate_member(self, port, machine):
        """Forget one *replica* of a cached replica set, keeping the
        survivors — failover should not blind the client to the replicas
        that are still answering.  A single-machine mapping equal to
        ``machine`` is dropped whole.  Advances the stripe epoch either
        way (the set shape changed; a slow in-flight locate may carry
        the dead member).  Returns True when anything changed."""
        index = self._index(port)
        with self._locks[index]:
            value = self._shards[index].get(port)
            if value is None:
                return False
            if getattr(value, "is_replica_set", False):
                if machine not in value:
                    return False
                survivors = value.without(machine)
                if len(survivors):
                    self._shards[index][port] = survivors
                else:
                    del self._shards[index][port]
            elif value == machine:
                del self._shards[index][port]
            else:
                return False
            self._epochs[index] += 1
        return True

    def clear(self):
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                shard.clear()

    def __len__(self):
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, port):
        return port in self._shards[port.value & self._mask]

    @property
    def shard_count(self):
        return len(self._shards)


class Locator:
    """Resolve put-ports to machine addresses, with a sharded cache."""

    def __init__(self, node, rng=None, cache_shards=8):
        self.node = node
        self.rng = rng or RandomSource()
        self.cache = ShardedLocationCache(shards=cache_shards)
        # Experiment counters: per-stripe (hits, misses) tuples replaced
        # wholesale, partitioned like the cache itself, with no lock —
        # the hit path stays as lock-free as the cache read it follows.
        # A reader always sees a coherent pair (one reference load,
        # never a torn hits-without-its-misses mix); two locates racing
        # on the *same* stripe can lose an increment, the same
        # best-effort accounting the old `hits += 1` counters had.
        self._stripe_counts = [(0, 0)] * self.cache.shard_count
        # Ports whose whole replica pool went silent (PartitionSuspected):
        # the next locate() skips the warm cache and re-broadcasts, which
        # is how a healed partition is *observed* rather than waited out.
        self._suspected = set()
        #: Broadcasts forced by a partition suspicion (experiment counter).
        self.suspicion_probes = 0

    @property
    def hits(self):
        return sum(counts[0] for counts in self._stripe_counts)

    @property
    def misses(self):
        return sum(counts[1] for counts in self._stripe_counts)

    def _count(self, port, hit):
        counts = self._stripe_counts
        index = self.cache._index(port)
        hits, misses = counts[index]
        counts[index] = (hits + 1, misses) if hit else (hits, misses + 1)

    def locate(self, port, timeout=1.0, retries=2):
        """Return the machine address serving ``port``.

        A cache miss broadcasts LOCATE up to ``1 + retries`` times under
        the single ``timeout`` budget: the first wait is the budget's
        smallest power-of-two fraction, each rebroadcast doubles it, and
        the final wait runs to the deadline itself — so an unanswered
        locate consumes exactly ``timeout`` (virtual seconds on a DES
        station, wall seconds over sockets, and no time at all on the
        pump-driven simulators, where a dry pump settles each round
        immediately).  A lost LOCATE or HERE frame on a faulty wire is
        thus survived by rebroadcast instead of surfacing as
        :class:`PortNotLocated`.

        Raises :class:`PortNotLocated` when no machine answers any
        broadcast within ``timeout``.
        """
        port = as_port(port)
        cached = self.cache.get(port)
        if cached is not None:
            if port not in self._suspected:
                self._count(port, hit=True)
                return cached
            # Suspected partition: the cached mapping may be stale on
            # the far side of a cut.  Fall through to a fresh broadcast
            # — a HERE answer proves the pool reachable again and
            # clears the suspicion.
            self.suspicion_probes += 1
        self._count(port, hit=False)
        # Snapshot the stripe's invalidation epoch *before* broadcasting:
        # if a crash is detected while the round trip is in flight, the
        # answer must not resurrect the purged mapping.
        epoch = self.cache.epoch(port)
        # Local imports to avoid cycle noise (rpc pulls in the transports).
        from repro.core.ports import PrivatePort
        from repro.ipc.rpc import _poll_blocking

        reply_private = PrivatePort.generate(self.rng)
        # Hold the wire port listen() returns; the waits below then share
        # rpc's ``_poll_blocking`` — one feature-detected wait discipline
        # (SocketNode blocks in wall time; a DES-mode Nic consumes
        # *virtual* time) instead of a second copy of it here.
        wire_reply = self.node.listen(reply_private)
        clock = getattr(self.node, "clock", None)
        if clock is None:
            import time

            read_clock = time.monotonic
        else:
            read_clock = lambda: clock.now  # noqa: E731
        try:
            probe = Message(
                command=stdops.LOCATE,
                reply=as_port(reply_private),
                data=port.to_bytes(),
            )
            deadline = read_clock() + timeout
            wait = timeout / (2 ** max(retries, 0))
            for attempt in range(retries + 1):
                self.node.put_broadcast(probe)
                frame = self.node.poll_wire(wire_reply)
                if frame is None:
                    if attempt == retries:
                        until = deadline
                    else:
                        until = min(read_clock() + wait, deadline)
                    remaining = until - read_clock()
                    frame = _poll_blocking(self.node, wire_reply, remaining)
                if frame is not None:
                    located = self._parse_here(port, frame)
                    if located is None:  # malformed answer; keep waiting
                        wait *= 2
                        continue
                    # A rejected put means an invalidation raced us; the
                    # answer itself is still the freshest thing we have
                    # for *this* call, it just must not repopulate the
                    # cache (it may predate the detected crash).
                    self.cache.put(port, located, epoch=epoch)
                    self._suspected.discard(port)
                    return located
                wait *= 2
                if read_clock() >= deadline and attempt < retries:
                    break
            raise PortNotLocated("no machine answered LOCATE for %r" % port)
        finally:
            self.node.unlisten_wire(wire_reply)

    def _parse_here(self, port, frame):
        """Decode a HERE answer: the legacy 6-byte form names the
        answering machine itself; the extended form carries a packed
        replica set (policy + members) for the logical port."""
        data = frame.message.data
        if len(data) == len(port.to_bytes()):
            return frame.src  # legacy single-machine HERE
        from repro.ipc.replica import unpack_here_payload

        try:
            answered_port, replicas = unpack_here_payload(data)
        except ValueError:
            return None
        if answered_port != port:
            return None
        return replicas

    def suspect(self, port):
        """Flag a port as possibly partitioned away: keep the cached
        mapping (the members are not known dead) but force the next
        :meth:`locate` to re-broadcast.  An answer clears the flag."""
        self._suspected.add(as_port(port))

    def suspects(self, port):
        """True while ``port`` awaits a post-partition re-broadcast."""
        return as_port(port) in self._suspected

    def invalidate(self, port):
        """Forget a cached location (server crashed or migrated); only
        the owning cache shard is touched."""
        self.cache.invalidate(as_port(port))

    def invalidate_member(self, port, machine):
        """Forget one dead replica of a cached replica set, keeping the
        members that are still answering."""
        return self.cache.invalidate_member(as_port(port), machine)

    def __repr__(self):
        return "Locator(cached=%d, hits=%d, misses=%d)" % (
            len(self.cache),
            self.hits,
            self.misses,
        )
