"""Port location: broadcast LOCATE and the (port, machine) cache.

§2.2: "The associative addressing can be simulated in software ... by
having each one maintain a cache of (port, machine-number) pairs.  If a
port is not in the cache, it can be found by broadcasting a LOCATE
message."  The efficient generalisation is Mullender–Vitányi distributed
match-making; on a single broadcast segment the protocol below is the
exact mechanism the paper sketches.

The cache is what makes the economics work: a hit costs zero extra
frames, a miss costs one broadcast plus one HERE unicast.  The RPC
benchmarks count both.
"""

from repro.core.ports import Port, as_port
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated
from repro.ipc import stdops
from repro.net.message import Message


def install_locate_responder(nic):
    """Make a station answer LOCATE broadcasts for ports it serves.

    This is kernel functionality: it answers from the NIC's admission
    table, not from any user process.
    """

    def responder(frame):
        message = frame.message
        if message.command != stdops.LOCATE:
            return
        try:
            target = Port.from_bytes(message.data)
        except ValueError:
            return
        if not nic.admits(target):
            return
        here = Message(
            dest=message.reply,
            command=stdops.HERE,
            data=target.to_bytes(),
            is_reply=True,
        )
        nic.put(here, dst_machine=frame.src)

    nic.on_broadcast(responder)
    return responder


class Locator:
    """Resolve put-ports to machine addresses, with a cache."""

    def __init__(self, node, rng=None):
        self.node = node
        self.rng = rng or RandomSource()
        self.cache = {}
        #: Experiment counters.
        self.hits = 0
        self.misses = 0

    def locate(self, port, timeout=1.0):
        """Return the machine address serving ``port``.

        Raises :class:`PortNotLocated` when no machine answers the
        broadcast within ``timeout``.
        """
        port = as_port(port)
        cached = self.cache.get(port)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        # Local imports to avoid cycle noise (rpc pulls in the transports).
        from repro.core.ports import PrivatePort
        from repro.ipc.rpc import _poll_blocking

        reply_private = PrivatePort.generate(self.rng)
        # Hold the wire port listen() returns; the waits below then share
        # rpc's ``_poll_blocking`` — one feature-detected wait discipline
        # (SocketNode blocks in wall time; a DES-mode Nic consumes
        # *virtual* time, so an unanswered LOCATE costs exactly
        # ``timeout`` simulated seconds before :class:`PortNotLocated`)
        # instead of a second copy of it here.
        wire_reply = self.node.listen(reply_private)
        try:
            probe = Message(
                command=stdops.LOCATE,
                reply=as_port(reply_private),
                data=port.to_bytes(),
            )
            self.node.put_broadcast(probe)
            frame = self.node.poll_wire(wire_reply)
            if frame is None:
                frame = _poll_blocking(self.node, wire_reply, timeout)
            if frame is None:
                raise PortNotLocated("no machine answered LOCATE for %r" % port)
            self.cache[port] = frame.src
            return frame.src
        finally:
            self.node.unlisten_wire(wire_reply)

    def invalidate(self, port):
        """Forget a cached location (server crashed or migrated)."""
        self.cache.pop(as_port(port), None)

    def __repr__(self):
        return "Locator(cached=%d, hits=%d, misses=%d)" % (
            len(self.cache),
            self.hits,
            self.misses,
        )
