"""RPC and service plumbing on top of the network substrate.

Amoeba's communication model (§2.1): a client performs an operation on an
object by sending a request — one message carrying a capability, an
operation code, and parameters — and blocking until the reply arrives.
There are no connections or long-lived communication structures.
"""

from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator, install_locate_responder
from repro.ipc.rpc import AsyncTrans, trans, trans_many
from repro.ipc.server import ObjectServer, RequestContext, command
from repro.ipc.stdops import (
    HERE,
    LOCATE,
    RIGHT_ADMIN,
    STD_DESTROY,
    STD_INFO,
    STD_REFRESH,
    STD_RESTRICT,
    STD_TOUCH,
    USER_BASE,
)

__all__ = [
    "AsyncTrans",
    "HERE",
    "LOCATE",
    "Locator",
    "ObjectServer",
    "RIGHT_ADMIN",
    "RequestContext",
    "STD_DESTROY",
    "STD_INFO",
    "STD_REFRESH",
    "STD_RESTRICT",
    "STD_TOUCH",
    "ServiceClient",
    "USER_BASE",
    "command",
    "install_locate_responder",
    "trans",
    "trans_many",
]
