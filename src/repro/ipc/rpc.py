"""The blocking transaction primitive (§2.1).

``trans`` is the whole client-side protocol: pick a fresh reply get-port
G', listen on it, send the request with G' in the reply field (the F-box
puts F(G') on the wire), and block for the reply.  A fresh G' per
transaction means stale replies from earlier transactions land on ports
nobody listens to — the system needs no sequence numbers.

Replies may optionally be authenticated against a server's published
signature image F(S): forged replies (which *are* deliverable, since the
reply put-port is visible on the wire) then fail the signature comparison
and are discarded.  This is the digital-signature mechanism of §2.2.
"""

import time

from repro.core.ports import PrivatePort, as_port
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated, RPCTimeout

_DEFAULT_RNG = RandomSource()


def trans(
    node,
    dest_port,
    request,
    rng=None,
    timeout=2.0,
    expect_signature=None,
    dst_machine=None,
    signature=None,
):
    """Send one request and block for its reply.

    Parameters
    ----------
    node:
        A station (:class:`~repro.net.nic.Nic` or
        :class:`~repro.net.sockets.SocketNode`).
    dest_port:
        The service's public put-port.
    request:
        The :class:`~repro.net.message.Message` to send; its ``dest`` and
        ``reply`` fields are filled in here.
    expect_signature:
        The server's published signature image F(S); replies whose
        signature field differs are discarded as forgeries.
    dst_machine:
        Located machine address for unicast (see
        :class:`~repro.ipc.locate.Locator`); ``None`` lets the admission
        filters route.
    signature:
        The *client's* signature secret (a :class:`PrivatePort`), placed
        in the signature field for server-side sender authentication.

    Raises
    ------
    PortNotLocated
        No station admitted the request frame (simulated network only).
    RPCTimeout
        No (acceptable) reply arrived within ``timeout`` seconds.
    """
    rng = rng or _DEFAULT_RNG
    reply_private = PrivatePort.generate(rng)
    node.listen(reply_private)
    try:
        outgoing = request.copy(
            dest=as_port(dest_port),
            reply=as_port(reply_private),
            is_reply=False,
        )
        if signature is not None:
            outgoing = outgoing.copy(signature=as_port(signature))
        accepted = node.put(outgoing, dst_machine=dst_machine)
        if not accepted and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % as_port(dest_port)
            )
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            frame = _poll(node, reply_private, remaining)
            if frame is None:
                raise RPCTimeout(
                    "no reply within %.3fs from port %r"
                    % (timeout, as_port(dest_port))
                )
            reply = frame.message
            if expect_signature is not None and reply.signature != expect_signature:
                # A forged reply: keep waiting for the genuine one.
                continue
            return reply
    finally:
        node.unlisten(reply_private)


def _poll(node, port, remaining):
    """Poll a station; the simulator is synchronous, sockets block."""
    frame = node.poll(port)
    if frame is not None or remaining <= 0:
        return frame
    try:
        return node.poll(port, timeout=remaining)
    except TypeError:
        # The simulated Nic has no timeout concept: delivery already
        # happened synchronously during put(), so an empty queue now is
        # final.
        return None
