"""The blocking transaction primitive (§2.1).

``trans`` is the whole client-side protocol: pick a fresh reply get-port
G', listen on it, send the request with G' in the reply field (the F-box
puts F(G') on the wire), and block for the reply.  A fresh G' per
transaction means stale replies from earlier transactions land on ports
nobody listens to — the system needs no sequence numbers.

Replies may optionally be authenticated against a server's published
signature image F(S): forged replies (which *are* deliverable, since the
reply put-port is visible on the wire) then fail the signature comparison
and are discarded.  This is the digital-signature mechanism of §2.2.
"""

import time

from repro.core.ports import Port, as_port
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated, RPCTimeout

_DEFAULT_RNG = RandomSource()


def trans(
    node,
    dest_port,
    request,
    rng=None,
    timeout=2.0,
    expect_signature=None,
    dst_machine=None,
    signature=None,
):
    """Send one request and block for its reply.

    Parameters
    ----------
    node:
        A station (:class:`~repro.net.nic.Nic` or
        :class:`~repro.net.sockets.SocketNode`).
    dest_port:
        The service's public put-port.
    request:
        The :class:`~repro.net.message.Message` to send; its ``dest`` and
        ``reply`` fields are filled in here.
    expect_signature:
        The server's published signature image F(S); replies whose
        signature field differs are discarded as forgeries.
    dst_machine:
        Located machine address for unicast (see
        :class:`~repro.ipc.locate.Locator`); ``None`` lets the admission
        filters route.
    signature:
        The *client's* signature secret (a :class:`PrivatePort`), placed
        in the signature field for server-side sender authentication.

    Raises
    ------
    PortNotLocated
        No station admitted the request frame (simulated network only).
    RPCTimeout
        No (acceptable) reply arrived within ``timeout`` seconds.
    """
    rng = rng or _DEFAULT_RNG
    # The reply secret G' as a bare Port — a fresh 48-bit value per
    # transaction, exactly what PrivatePort.generate produces, minus a
    # wrapper the hot path would immediately unwrap again.  Unlike
    # PrivatePort, Port's repr shows the value, so containment matters:
    # nothing here logs or reprs it, and put_owned replaces it with
    # F(G') in place on egress.  (Like any recently one-wayed value it
    # does transit the F-box image cache — see the cache-retention note
    # in docs/PERFORMANCE.md.)
    reply_secret = Port.random(rng)
    # listen() hands back the wire port F(G'); holding on to it lets the
    # poll/unlisten below skip re-deriving it.
    wire_reply = node.listen(reply_secret)
    try:
        # One trusted copy: the caller's request was validated when it was
        # constructed, and every replacement value here is a Port.
        if signature is None:
            outgoing = request._evolve(
                dest=as_port(dest_port), reply=reply_secret, is_reply=False
            )
        else:
            outgoing = request._evolve(
                dest=as_port(dest_port),
                reply=reply_secret,
                signature=as_port(signature),
                is_reply=False,
            )
        # put_owned: `outgoing` is our private copy, never reused after
        # this call, so the F-box may transform it in place.
        accepted = node.put_owned(outgoing, dst_machine)
        if not accepted and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % as_port(dest_port)
            )
        # Fast path first: on the synchronous simulator the reply is
        # already queued, so no clock reads are needed at all.
        frame = node.poll_wire(wire_reply)
        deadline = None
        while True:
            if frame is None:
                if deadline is None:
                    deadline = time.monotonic() + timeout
                remaining = deadline - time.monotonic()
                frame = _poll_blocking(node, wire_reply, remaining)
                if frame is None:
                    raise RPCTimeout(
                        "no reply within %.3fs from port %r"
                        % (timeout, as_port(dest_port))
                    )
            reply = frame.message
            if expect_signature is not None and reply.signature != expect_signature:
                # A forged reply: keep waiting for the genuine one.
                frame = node.poll_wire(wire_reply)
                continue
            return reply
    finally:
        node.unlisten_wire(wire_reply)


def _poll_blocking(node, wire_port, remaining):
    """Poll a station; the simulator is synchronous, sockets block."""
    if remaining <= 0:
        return None
    try:
        return node.poll_wire(wire_port, timeout=remaining)
    except TypeError:
        # The simulated Nic has no timeout concept: delivery already
        # happened synchronously during put(), so an empty queue now is
        # final.
        return None
