"""The transaction primitives (§2.1): blocking and pipelined.

``trans`` is the whole client-side protocol: pick a fresh reply get-port
G', listen on it, send the request with G' in the reply field (the F-box
puts F(G') on the wire), and block for the reply.  A fresh G' per
transaction means stale replies from earlier transactions land on ports
nobody listens to — the system needs no sequence numbers.

``trans_many`` / :class:`AsyncTrans` keep the identical per-transaction
protocol — fresh G' per request, same F-box transformation, same
signature screening — but split *issue* from *collect*, so N requests can
be in flight before the first reply is consumed.  On a deferred-delivery
network (``SimNetwork(synchronous=False)``) the requests genuinely queue
and pipeline through the event loop; on a synchronous network or over UDP
sockets the API still works, it just overlaps less.

Replies may optionally be authenticated against a server's published
signature image F(S): forged replies (which *are* deliverable, since the
reply put-port is visible on the wire) then fail the signature comparison
and are discarded.  This is the digital-signature mechanism of §2.2.
"""

import queue as _queue
import random
import time

from repro.core.ports import PORT_BYTES, Port, as_port
from repro.crypto.randomsrc import RandomSource
from repro.errors import PartitionSuspected, PortNotLocated, RPCTimeout
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sockets import SocketNode

_DEFAULT_RNG = RandomSource()


class RetryPolicy:
    """Retransmission schedule for at-least-once transactions.

    A transaction given a policy is transmitted, then retransmitted each
    time a backoff wait expires without an acceptable reply — up to
    ``attempts`` *re*transmissions, all under the transaction's overall
    ``timeout`` budget (the deadline always wins; backoff never extends
    it).  Waits grow exponentially from ``rto`` by ``multiplier`` up to
    ``cap``, with a seeded multiplicative jitter in ``[1, 1+jitter)`` so
    a fleet of synchronized clients spreads out instead of thundering in
    lockstep — yet every run with the same seed replays the same
    schedule, which is what the DES determinism contract requires.

    The crucial protocol property: a retransmission reuses the *same*
    reply secret G', so every copy of the request carries the same F(G')
    on the wire.  That pair — unforgeable source address, fresh-per-
    transaction reply port — is the transaction id the server's
    duplicate-suppression cache keys on (:mod:`repro.ipc.server`); no
    wire-format change is needed.

    A backoff wait is a *continued wait on the reply port*, never a
    blind sleep: a reply landing mid-backoff is taken immediately.
    """

    __slots__ = ("attempts", "rto", "cap", "multiplier", "jitter", "_rng")

    def __init__(self, attempts=4, rto=0.05, cap=1.0, multiplier=2.0,
                 jitter=0.1, seed=0):
        if attempts < 0:
            raise ValueError("attempts cannot be negative")
        if rto <= 0 or cap <= 0:
            raise ValueError("rto and cap must be positive")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if jitter < 0:
            raise ValueError("jitter cannot be negative")
        self.attempts = attempts
        self.rto = rto
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = random.Random(seed)

    def waits(self):
        """One transaction's backoff schedule: ``attempts`` waits, each
        the pause before the next retransmission.  Jitter is drawn from
        the policy's seeded RNG per call, so concurrent transactions
        sharing a policy get different (but reproducible) schedules."""
        out = []
        wait = self.rto
        for _ in range(self.attempts):
            w = wait
            if self.jitter:
                w *= 1.0 + self._rng.random() * self.jitter
            out.append(w)
            wait = min(wait * self.multiplier, self.cap)
        return out

    def __repr__(self):
        return "RetryPolicy(attempts=%d, rto=%g, cap=%g, multiplier=%g)" % (
            self.attempts, self.rto, self.cap, self.multiplier,
        )


def trans(
    node,
    dest_port,
    request,
    rng=None,
    timeout=2.0,
    expect_signature=None,
    dst_machine=None,
    signature=None,
    retry=None,
    locator=None,
):
    """Send one request and block for its reply.

    Parameters
    ----------
    node:
        A station (:class:`~repro.net.nic.Nic` or
        :class:`~repro.net.sockets.SocketNode`).
    dest_port:
        The service's public put-port.
    request:
        The :class:`~repro.net.message.Message` to send; its ``dest`` and
        ``reply`` fields are filled in here.
    expect_signature:
        The server's published signature image F(S); replies whose
        signature field differs are discarded as forgeries.
    dst_machine:
        Located machine address for unicast (see
        :class:`~repro.ipc.locate.Locator`); ``None`` lets the admission
        filters route.
    signature:
        The *client's* signature secret (a :class:`PrivatePort`), placed
        in the signature field for server-side sender authentication.
    retry:
        An optional :class:`RetryPolicy` turning the transaction into an
        at-least-once exchange: the request is retransmitted on backoff
        expiry (same reply secret each time), still under the one
        ``timeout`` deadline.  None (the default) keeps the classic
        send-once semantics and the exact pre-existing hot path.
    locator:
        With a replica-set ``dst_machine``, the
        :class:`~repro.ipc.locate.Locator` (or anything with
        ``invalidate_member``) to notify when one replica times out —
        only the dead member is forgotten, never the whole entry.

    When ``dst_machine`` is a :class:`~repro.ipc.replica.ReplicaSet`
    the transaction becomes replica-aware: candidates are ordered by the
    set's spread policy (per-object rendezvous affinity when the request
    carries a capability), each candidate gets an equal slice of the
    ``timeout`` budget (with any ``retry`` schedule running inside its
    slice), and an ``RPCTimeout`` fails over to the next replica instead
    of surfacing.  Only when every member is silent does the timeout
    propagate.  Because a failover retry reuses the at-least-once
    machinery, each *replica's* ReplyCache independently suppresses
    duplicates — the replica that already executed never re-executes.

    Raises
    ------
    PortNotLocated
        No station admitted the request frame (simulated network only),
        or the replica set has no members.
    RPCTimeout
        No (acceptable) reply arrived within ``timeout`` seconds.
    """
    rng = rng or _DEFAULT_RNG
    if getattr(dst_machine, "is_replica_set", False):
        return _trans_replicated(
            node, dest_port, request, rng, timeout, expect_signature,
            dst_machine, signature, retry, locator,
        )
    if retry is not None:
        return _trans_retry(
            node, as_port(dest_port), request, rng, timeout,
            expect_signature, dst_machine,
            as_port(signature) if signature is not None else None, retry,
        )
    # The reply secret G' as a bare Port — a fresh 48-bit value per
    # transaction, exactly what PrivatePort.generate produces, minus a
    # wrapper the hot path would immediately unwrap again.  Unlike
    # PrivatePort, Port's repr shows the value, so containment matters:
    # nothing here logs or reprs it, and put_owned replaces it with
    # F(G') in place on egress.  (Like any recently one-wayed value it
    # does transit the F-box image cache — see the cache-retention note
    # in docs/PERFORMANCE.md.)
    reply_secret = Port.random(rng)
    # listen() hands back the wire port F(G'); holding on to it lets the
    # poll/unlisten below skip re-deriving it.
    wire_reply = node.listen(reply_secret)
    try:
        # One trusted copy: the caller's request was validated when it was
        # constructed, and every replacement value here is a Port.
        if signature is None:
            outgoing = request._evolve(
                dest=as_port(dest_port), reply=reply_secret, is_reply=False
            )
        else:
            outgoing = request._evolve(
                dest=as_port(dest_port),
                reply=reply_secret,
                signature=as_port(signature),
                is_reply=False,
            )
        # put_owned: `outgoing` is our private copy, never reused after
        # this call, so the F-box may transform it in place.
        accepted = node.put_owned(outgoing, dst_machine)
        if not accepted and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % as_port(dest_port)
            )
        # Fast path first: on the synchronous simulator the reply is
        # already queued, so no clock reads are needed at all.
        frame = node.poll_wire(wire_reply)
        deadline = None
        # The timeout budget is spent on the station's own clock: wall
        # time for real wires, *virtual* time on a DES network (where a
        # wall-clock deadline would be meaningless — the whole wait costs
        # microseconds of host time).
        clock = getattr(node, "clock", None)
        read_clock = time.monotonic if clock is None else lambda: clock.now
        while True:
            if frame is None:
                if deadline is None:
                    deadline = read_clock() + timeout
                remaining = deadline - read_clock()
                frame = _poll_blocking(node, wire_reply, remaining)
                if frame is None:
                    raise RPCTimeout(
                        "no reply within %.3fs from port %r"
                        % (timeout, as_port(dest_port))
                    )
            reply = frame.message
            if expect_signature is not None and reply.signature != expect_signature:
                # A forged reply: keep waiting for the genuine one.
                frame = node.poll_wire(wire_reply)
                continue
            return reply
    finally:
        node.unlisten_wire(wire_reply)


def _poll_blocking(node, wire_port, remaining):
    """Poll a station: sockets block with a timeout, the simulator pumps.

    Feature-detected once through the station's ``supports_poll_timeout``
    capability attribute (Nic: False, SocketNode: True) — the old probe
    caught TypeError around the whole poll, which silently swallowed a
    genuine TypeError raised *inside* delivery and turned it into a bogus
    RPCTimeout.
    """
    if remaining <= 0:
        return None
    if getattr(node, "supports_poll_timeout", False):
        return node.poll_wire(wire_port, timeout=remaining)
    # No timeout concept: delivery happens during put() (synchronous) or
    # during pump() (deferred), never later — drain whatever is still
    # queued, then the poll's answer is final.
    pump = getattr(node, "pump", None)
    if pump is not None:
        pump()
    return node.poll_wire(wire_port)


def _await_screened(node, wire_reply, expect, until, read_clock, timed):
    """Wait until ``until`` (on the station's clock) for a reply that
    passes signature screening; None on expiry.

    On a station without timed polls (the in-process simulators) a dry
    pump means the reply can no longer arrive *this round*, so the wait
    returns immediately — retransmission attempts, not wall time, bound
    the retry loop there.
    """
    while True:
        frame = node.poll_wire(wire_reply)
        if frame is None:
            remaining = until - read_clock()
            if remaining <= 0:
                return None
            frame = _poll_blocking(node, wire_reply, remaining)
            if frame is None:
                if not timed:
                    return None
                continue  # timed poll expired; the remaining check settles it
        reply = frame.message
        if expect is None or reply.signature == expect:
            return reply
        # A forged reply: discard and keep waiting for the genuine one.


def _trans_retry(node, dest, request, rng, timeout, expect_signature,
                 dst_machine, sig_port, retry):
    """The at-least-once tail of :func:`trans`.

    Every transmission re-``_evolve``s from the caller's pristine
    request with the *same* reply secret: the F-box transforms the
    outgoing copy in place on egress, so re-sending a previous copy
    would double-one-way its reply/signature fields (the same corruption
    an intruder replay exhibits), while a fresh secret per attempt would
    defeat the server's duplicate suppression.
    """
    reply_secret = Port.random(rng)
    wire_reply = node.listen(reply_secret)
    clock = getattr(node, "clock", None)
    read_clock = time.monotonic if clock is None else lambda: clock.now
    timed = getattr(node, "supports_poll_timeout", False)

    def transmit():
        if sig_port is None:
            outgoing = request._evolve(
                dest=dest, reply=reply_secret, is_reply=False
            )
        else:
            outgoing = request._evolve(
                dest=dest, reply=reply_secret, signature=sig_port,
                is_reply=False,
            )
        accepted = node.put_owned(outgoing, dst_machine)
        if not accepted and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % (dest,)
            )

    try:
        transmit()
        transmissions = 1
        deadline = read_clock() + timeout
        for wait in retry.waits():
            until = min(read_clock() + wait, deadline)
            reply = _await_screened(
                node, wire_reply, expect_signature, until, read_clock, timed
            )
            if reply is not None:
                return reply
            if read_clock() >= deadline:
                break
            transmit()
            transmissions += 1
        # Attempts exhausted (or deadline passed mid-schedule): one final
        # wait runs the remaining budget down to the deadline itself.
        reply = _await_screened(
            node, wire_reply, expect_signature, deadline, read_clock, timed
        )
        if reply is not None:
            return reply
        raise RPCTimeout(
            "no reply after %d transmissions within %.3fs from port %r"
            % (transmissions, timeout, dest)
        )
    finally:
        node.unlisten_wire(wire_reply)


def _affinity_key(request):
    """The spread key for replica selection: the object number the
    request names, so a rendezvous-hash policy gives every client the
    same per-object home replica.  Header-only requests spread by
    policy default."""
    capability = request.capability
    return capability.object if capability is not None else None


def _trans_replicated(node, dest_port, request, rng, timeout,
                      expect_signature, replicas, signature, retry, locator):
    """The replica-failover tail of :func:`trans`.

    One logical port, N machines: candidates come ordered from the
    set's spread policy; each gets an equal slice of the timeout budget
    (a dead replica must not consume the whole deadline), and a timed-out
    candidate is reported to the locator — which forgets only that
    member — before the next one is tried.  Each attempt is an ordinary
    :func:`trans` with a *fresh* reply secret; at-least-once semantics
    across replicas come from the per-replica ReplyCache contract, not
    from sharing G' across machines (a reply from a replica we already
    gave up on must land on a dead port, not be mistaken for the
    current attempt's answer).
    """
    candidates = replicas.select(_affinity_key(request))
    if not candidates:
        raise PortNotLocated(
            "replica set for port %r has no members" % as_port(dest_port)
        )
    slice_timeout = timeout / len(candidates)
    dest = as_port(dest_port)
    last_error = None
    for machine in candidates:
        try:
            return trans(
                node, dest, request, rng=rng, timeout=slice_timeout,
                expect_signature=expect_signature, dst_machine=machine,
                signature=signature, retry=retry,
            )
        except RPCTimeout as exc:
            last_error = exc
            if locator is not None:
                locator.invalidate_member(dest, machine)
    if len(candidates) >= 2:
        # One silent member is a crash; every member of a replicated
        # pool going silent in one transaction smells like the network,
        # not the service.
        raise PartitionSuspected(
            "no reply from any of %d replicas of port %r within %.3fs"
            % (len(candidates), dest, timeout)
        ) from last_error
    raise RPCTimeout(
        "no reply from any of %d replicas of port %r within %.3fs"
        % (len(candidates), dest, timeout)
    ) from last_error


# ----------------------------------------------------------------------
# pipelined transactions
# ----------------------------------------------------------------------


class AsyncTrans:
    """One in-flight transaction: issued on construction, collected later.

    The constructor runs the issue half of :func:`trans` — fresh reply
    secret, GET on it, request evolved and PUT through the F-box — and
    returns with the transaction in flight.  :meth:`result` runs the
    collect half.  Between the two, any number of sibling transactions
    may be issued on the same station; each holds its own fresh reply
    port, so replies cannot cross (§2.1's freshness argument, unchanged).

    ``reply_secret`` is for internal batch issuers (``trans_many`` draws
    one pooled block of randomness for a whole batch); ordinary callers
    leave it None and the constructor draws from ``rng``.

    With ``retry`` (a :class:`RetryPolicy`), :meth:`result` retransmits
    the request on backoff expiry — same reply secret every time, so the
    server's duplicate suppression sees one transaction — and
    :meth:`cancel` withdraws the pending retransmit state along with the
    reply GET.
    """

    __slots__ = (
        "node",
        "wire_reply",
        "expect_signature",
        "_reply",
        "_cancelled",
        "_waits",
        "_request",
        "_dest",
        "_dst_machine",
        "_sig_port",
        "_reply_secret",
    )

    def __init__(
        self,
        node,
        dest_port,
        request,
        rng=None,
        expect_signature=None,
        dst_machine=None,
        signature=None,
        reply_secret=None,
        retry=None,
    ):
        if reply_secret is None:
            reply_secret = Port.random(rng or _DEFAULT_RNG)
        if getattr(dst_machine, "is_replica_set", False):
            # A pipelined issue binds to one replica up front — failover
            # mid-flight is the blocking path's job — but the spread
            # policy still decides *which* one, so a burst of issues
            # load-balances like blocking calls do.
            candidates = dst_machine.select(_affinity_key(request))
            if not candidates:
                raise PortNotLocated(
                    "replica set for port %r has no members"
                    % as_port(dest_port)
                )
            dst_machine = candidates[0]
        self.node = node
        self.expect_signature = expect_signature
        self._reply = None
        self._cancelled = False
        if retry is not None:
            # The pristine request and routing are kept so result() can
            # re-evolve a fresh copy per retransmission (the F-box
            # transforms each outgoing copy in place on egress).
            self._waits = retry.waits()
            self._request = request
            self._dest = as_port(dest_port)
            self._dst_machine = dst_machine
            self._sig_port = (
                as_port(signature) if signature is not None else None
            )
            self._reply_secret = reply_secret
        else:
            self._waits = None
            self._request = None
        wire_reply = self.wire_reply = node.listen(reply_secret)
        try:
            if signature is None:
                outgoing = request._evolve(
                    dest=as_port(dest_port), reply=reply_secret, is_reply=False
                )
            else:
                outgoing = request._evolve(
                    dest=as_port(dest_port),
                    reply=reply_secret,
                    signature=as_port(signature),
                    is_reply=False,
                )
            accepted = node.put_owned(outgoing, dst_machine)
            if not accepted and dst_machine is None:
                raise PortNotLocated(
                    "no server is listening on port %r" % as_port(dest_port)
                )
        except BaseException:
            node.unlisten_wire(wire_reply)
            raise

    @property
    def done(self):
        """True once an acceptable reply has been collected."""
        return self._reply is not None

    def _screen(self, frame):
        """Accept or discard one candidate reply frame; returns the reply
        message (after signature screening) or None."""
        expect = self.expect_signature
        while frame is not None:
            reply = frame.message
            if expect is None or reply.signature == expect:
                self._reply = reply
                if not self._cancelled:
                    # cancel() already released the GET; unlistening the
                    # same wire port twice would tear down a listener a
                    # later transaction may have re-registered.
                    self.node.unlisten_wire(self.wire_reply)
                return reply
            frame = self.node.poll_wire(self.wire_reply)
        return None

    def poll(self):
        """Non-blocking: the reply if it has arrived, else None.

        Does not pump the network; combine with ``node.pump()`` for
        manual scheduling.
        """
        if self._reply is not None:
            return self._reply
        return self._screen(self.node.poll_wire(self.wire_reply))

    def result(self, timeout=2.0):
        """Collect the reply, driving delivery as needed.

        On a deferred simulator this pumps the event loop; over sockets
        it blocks on the reply queue.  Raises :class:`RPCTimeout` when no
        acceptable reply arrives, after withdrawing the reply GET.
        """
        reply = self.poll()
        if reply is not None:
            return reply
        node = self.node
        if self._waits is not None:
            return self._result_retry(timeout)
        if getattr(node, "supports_poll_timeout", False):
            # Same clock discipline as trans(): the budget is wall time
            # on real wires, virtual time on a DES network.
            clock = getattr(node, "clock", None)
            read_clock = time.monotonic if clock is None else lambda: clock.now
            deadline = read_clock() + timeout
            while True:
                remaining = deadline - read_clock()
                if remaining <= 0:
                    break
                frame = node.poll_wire(self.wire_reply, timeout=remaining)
                if frame is None:
                    break
                reply = self._screen(frame)
                if reply is not None:
                    return reply
        else:
            # Deterministic simulator: pump until the reply lands or no
            # frames remain — an empty loop means the reply will never
            # come, so there is nothing to wait out.
            while True:
                progressed = node.pump()
                reply = self.poll()
                if reply is not None:
                    return reply
                if not progressed:
                    break
        self.cancel()
        raise RPCTimeout(
            "no reply within %.3fs on wire port %r" % (timeout, self.wire_reply)
        )

    def _result_retry(self, timeout):
        """The at-least-once arm of :meth:`result` — the first
        transmission happened at construction; each backoff expiry here
        retransmits, all under the one ``timeout`` deadline."""
        node = self.node
        clock = getattr(node, "clock", None)
        read_clock = time.monotonic if clock is None else lambda: clock.now
        timed = getattr(node, "supports_poll_timeout", False)
        deadline = read_clock() + timeout
        transmissions = 1
        for wait in self._waits:
            until = min(read_clock() + wait, deadline)
            reply = self._await(until, read_clock, timed)
            if reply is not None:
                return reply
            if self._cancelled or read_clock() >= deadline:
                break
            self._retransmit()
            transmissions += 1
        if not self._cancelled:
            reply = self._await(deadline, read_clock, timed)
            if reply is not None:
                return reply
        self.cancel()
        raise RPCTimeout(
            "no reply after %d transmissions within %.3fs on wire port %r"
            % (transmissions, timeout, self.wire_reply)
        )

    def _await(self, until, read_clock, timed):
        """Wait until ``until`` for a screened reply; None on expiry (or,
        on pump-driven stations, as soon as a pump makes no progress)."""
        node = self.node
        while True:
            frame = node.poll_wire(self.wire_reply)
            if frame is not None:
                reply = self._screen(frame)
                if reply is not None:
                    return reply
                continue
            remaining = until - read_clock()
            if remaining <= 0:
                return None
            if timed:
                frame = node.poll_wire(self.wire_reply, timeout=remaining)
                if frame is None:
                    continue  # expired; the remaining check settles it
                reply = self._screen(frame)
                if reply is not None:
                    return reply
            elif not node.pump():
                return None

    def _retransmit(self):
        """Put one more copy of the request on the wire (same reply
        secret — one transaction as far as the server can tell)."""
        request = self._request
        if request is None or self._cancelled or self._reply is not None:
            return False
        if self._sig_port is None:
            outgoing = request._evolve(
                dest=self._dest, reply=self._reply_secret, is_reply=False
            )
        else:
            outgoing = request._evolve(
                dest=self._dest,
                reply=self._reply_secret,
                signature=self._sig_port,
                is_reply=False,
            )
        self.node.put_owned(outgoing, self._dst_machine)
        return True

    def cancel(self):
        """Withdraw the reply GET and purge pending retransmit state.

        Idempotent and safe in every state: after :meth:`result`, after
        an earlier cancel, and when a late duplicate reply is already
        queued on the reply port — the GET is released exactly once, no
        retransmission can fire afterwards, and a reply arriving after
        cancellation is dropped at the (now silent) wire port instead of
        leaking a listener-index entry.
        """
        self._waits = None
        self._request = None
        if self._cancelled or self._reply is not None:
            return
        self._cancelled = True
        self.node.unlisten_wire(self.wire_reply)

    def __repr__(self):
        state = "done" if self._reply is not None else "in flight"
        return "AsyncTrans(%s, wire_reply=%r)" % (state, self.wire_reply)


def trans_many(
    node,
    dest_port,
    requests,
    rng=None,
    timeout=2.0,
    expect_signature=None,
    dst_machine=None,
    signature=None,
    retry=None,
    locator=None,
):
    """Issue every request with its own fresh reply port, then collect.

    The pipelined counterpart of :func:`trans`: all N requests are put on
    the wire (or the event-loop queues) before the first reply is
    awaited, and the replies come back in request order.  The reply
    secrets for the whole batch are drawn from one pooled randomness
    read, so issuing is O(N) dict work plus exactly N F-box transforms.

    A replica-set ``dst_machine`` binds the whole batch to one replica
    (chosen by the set's spread policy on the first request's object) so
    the fused lanes keep their single-destination shape; an
    ``RPCTimeout`` fails the *batch* over to the next replica, reporting
    the dead member to ``locator`` like :func:`trans` does.

    Raises whatever the underlying transactions raise; on any failure all
    outstanding reply GETs are withdrawn, so a failed batch leaves no
    listener-index residue.
    """
    requests = list(requests)
    if not requests:
        return []
    dest = as_port(dest_port)
    rng = rng or _DEFAULT_RNG
    if getattr(dst_machine, "is_replica_set", False):
        candidates = dst_machine.select(_affinity_key(requests[0]))
        if not candidates:
            raise PortNotLocated(
                "replica set for port %r has no members" % (dest,)
            )
        slice_timeout = timeout / len(candidates)
        last_error = None
        for machine in candidates:
            try:
                return trans_many(
                    node, dest, requests, rng=rng, timeout=slice_timeout,
                    expect_signature=expect_signature, dst_machine=machine,
                    signature=signature, retry=retry,
                )
            except RPCTimeout as exc:
                last_error = exc
                if locator is not None:
                    locator.invalidate_member(dest, machine)
        if len(candidates) >= 2:
            raise PartitionSuspected(
                "no replies from any of %d replicas of port %r within %.3fs"
                % (len(candidates), dest, timeout)
            ) from last_error
        raise RPCTimeout(
            "no replies from any of %d replicas of port %r within %.3fs"
            % (len(candidates), dest, timeout)
        ) from last_error
    secrets = _draw_secrets(rng, len(requests))
    if retry is not None:
        # Retransmitting transactions need per-call backoff state; the
        # fused lanes below are single-shot by construction, so the
        # batch rides N AsyncTrans instead (still issued before the
        # first collect — the pipelining survives, only the bulk-issue
        # fusion is given up).
        pass
    elif (
        type(node) is Nic
        and type(node.network) is SimNetwork
        and node.network._loop is not None
    ):
        for _ in range(4):
            replies = _trans_many_fused(
                node, dest, requests, secrets, expect_signature,
                dst_machine, signature,
            )
            if replies is not None:
                return replies
            # A wire-port collision inside the batch (or with an
            # existing GET).  With 48-bit random ports this is a
            # cosmic-ray case; redrawing fresh secrets resolves it —
            # sharing a sink would cross two transactions' replies.
            secrets = _draw_secrets(rng, len(requests))
        # Randomness is demonstrably broken (four colliding batches);
        # the sequential path below has exactly trans()'s behavior.
    elif type(node) is SocketNode:
        for _ in range(4):
            replies = _trans_many_sockets(
                node, dest, requests, secrets, expect_signature,
                dst_machine, signature, timeout,
            )
            if replies is not None:
                return replies
            secrets = _draw_secrets(rng, len(requests))
    calls = []
    try:
        for request, secret in zip(requests, secrets):
            calls.append(
                AsyncTrans(
                    node,
                    dest,
                    request,
                    expect_signature=expect_signature,
                    dst_machine=dst_machine,
                    signature=signature,
                    reply_secret=secret,
                    retry=retry,
                )
            )
        return [call.result(timeout) for call in calls]
    except BaseException:
        for call in calls:
            call.cancel()
        raise


def _draw_secrets(rng, n):
    """N fresh reply secrets from one pooled randomness read."""
    raw = rng.bytes(PORT_BYTES * n)
    if len(raw) != PORT_BYTES * n:
        raise ValueError("random source returned a short read")
    return [
        Port._unchecked(
            int.from_bytes(raw[i * PORT_BYTES:(i + 1) * PORT_BYTES], "big")
        )
        for i in range(n)
    ]


def _trans_many_sockets(node, dest, requests, secrets, expect_signature,
                        dst_machine, signature, timeout):
    """The batch lane for a :class:`SocketNode` — real pipelining.

    Protocol-identical to N :class:`AsyncTrans` (fresh reply port each,
    same F-box transformation per message, same signature screening) but
    issued batchwise: one ``listen_fresh`` admission swap, one
    ``put_owned_bulk`` burst of datagrams, then the replies are collected
    in request order from the live reply queues (each transaction keeps
    its own ``timeout`` budget, like ``AsyncTrans.result``).  While the
    client blocks on reply *i*, the server is already working on
    *i+1..N* — which is where the multiplicative win over serial
    ``trans`` comes from on a real wire.  Returns None on a reply-port
    collision (caller redraws, exactly like the simulator lane).
    """
    wires = node.listen_fresh(secrets)
    if wires is None:
        return None
    try:
        sig_port = as_port(signature) if signature is not None else None
        outgoing = []
        for request, secret in zip(requests, secrets):
            if sig_port is None:
                outgoing.append(
                    request._evolve(dest=dest, reply=secret, is_reply=False)
                )
            else:
                outgoing.append(
                    request._evolve(
                        dest=dest,
                        reply=secret,
                        signature=sig_port,
                        is_reply=False,
                    )
                )
        accepted = node.put_owned_bulk(outgoing, dst_machine)
        if accepted == 0 and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % (dest,)
            )
        replies = []
        for sink in node.reply_queues(wires):
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RPCTimeout(
                        "pipelined transaction got no reply from port %r"
                        % (dest,)
                    )
                try:
                    frame = sink.get(timeout=remaining)
                except _queue.Empty:
                    raise RPCTimeout(
                        "pipelined transaction got no reply from port %r"
                        % (dest,)
                    ) from None
                reply = frame.message
                if (
                    expect_signature is not None
                    and reply.signature != expect_signature
                ):
                    continue  # a forged reply: keep waiting for the real one
                replies.append(reply)
                break
        return replies
    finally:
        node.unlisten_wire_many(wires)


def _trans_many_fused(node, dest, requests, secrets, expect_signature,
                      dst_machine, signature):
    """The batch lane for a Nic on a deferred-delivery SimNetwork.

    Protocol-identical to N AsyncTrans (fresh reply port each, same F-box
    transformation per message, same signature screening) but issued and
    collected batchwise: one listen_fresh for all reply ports, one
    put_owned_bulk onto one ingress queue, one drain, one take_many.
    Returns None when the batch cannot take the lane (reply-port
    collision), which sends the caller down the generic path.
    """
    wires = node.listen_fresh(secrets)
    if wires is None:
        return None
    try:
        sig_port = as_port(signature) if signature is not None else None
        outgoing = []
        for request, secret in zip(requests, secrets):
            if sig_port is None:
                outgoing.append(
                    request._evolve(dest=dest, reply=secret, is_reply=False)
                )
            else:
                outgoing.append(
                    request._evolve(
                        dest=dest,
                        reply=secret,
                        signature=sig_port,
                        is_reply=False,
                    )
                )
        accepted = node.put_owned_bulk(outgoing, dst_machine)
        if accepted == 0 and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % (dest,)
            )
        # Drain everything in flight: requests, handler replies, and
        # whatever those spawn.  The simulator is deterministic, so after
        # the drain each reply either arrived or never will.
        node.network._loop.pump()
        replies = []
        queues = node.take_many(wires)
        wires = None  # GETs withdrawn; nothing left to clean on a raise
        for q in queues:
            frame = q.popleft() if q else None
            if expect_signature is not None:
                while frame is not None and (
                    frame.message.signature != expect_signature
                ):
                    frame = q.popleft() if q else None
            if frame is None:
                raise RPCTimeout(
                    "pipelined transaction got no reply from port %r"
                    % (dest,)
                )
            replies.append(frame.message)
        return replies
    finally:
        if wires is not None:
            node.take_many(wires)
