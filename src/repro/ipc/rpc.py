"""The transaction primitives (§2.1): blocking and pipelined.

``trans`` is the whole client-side protocol: pick a fresh reply get-port
G', listen on it, send the request with G' in the reply field (the F-box
puts F(G') on the wire), and block for the reply.  A fresh G' per
transaction means stale replies from earlier transactions land on ports
nobody listens to — the system needs no sequence numbers.

``trans_many`` / :class:`AsyncTrans` keep the identical per-transaction
protocol — fresh G' per request, same F-box transformation, same
signature screening — but split *issue* from *collect*, so N requests can
be in flight before the first reply is consumed.  On a deferred-delivery
network (``SimNetwork(synchronous=False)``) the requests genuinely queue
and pipeline through the event loop; on a synchronous network or over UDP
sockets the API still works, it just overlaps less.

Replies may optionally be authenticated against a server's published
signature image F(S): forged replies (which *are* deliverable, since the
reply put-port is visible on the wire) then fail the signature comparison
and are discarded.  This is the digital-signature mechanism of §2.2.
"""

import queue as _queue
import time

from repro.core.ports import PORT_BYTES, Port, as_port
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated, RPCTimeout
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sockets import SocketNode

_DEFAULT_RNG = RandomSource()


def trans(
    node,
    dest_port,
    request,
    rng=None,
    timeout=2.0,
    expect_signature=None,
    dst_machine=None,
    signature=None,
):
    """Send one request and block for its reply.

    Parameters
    ----------
    node:
        A station (:class:`~repro.net.nic.Nic` or
        :class:`~repro.net.sockets.SocketNode`).
    dest_port:
        The service's public put-port.
    request:
        The :class:`~repro.net.message.Message` to send; its ``dest`` and
        ``reply`` fields are filled in here.
    expect_signature:
        The server's published signature image F(S); replies whose
        signature field differs are discarded as forgeries.
    dst_machine:
        Located machine address for unicast (see
        :class:`~repro.ipc.locate.Locator`); ``None`` lets the admission
        filters route.
    signature:
        The *client's* signature secret (a :class:`PrivatePort`), placed
        in the signature field for server-side sender authentication.

    Raises
    ------
    PortNotLocated
        No station admitted the request frame (simulated network only).
    RPCTimeout
        No (acceptable) reply arrived within ``timeout`` seconds.
    """
    rng = rng or _DEFAULT_RNG
    # The reply secret G' as a bare Port — a fresh 48-bit value per
    # transaction, exactly what PrivatePort.generate produces, minus a
    # wrapper the hot path would immediately unwrap again.  Unlike
    # PrivatePort, Port's repr shows the value, so containment matters:
    # nothing here logs or reprs it, and put_owned replaces it with
    # F(G') in place on egress.  (Like any recently one-wayed value it
    # does transit the F-box image cache — see the cache-retention note
    # in docs/PERFORMANCE.md.)
    reply_secret = Port.random(rng)
    # listen() hands back the wire port F(G'); holding on to it lets the
    # poll/unlisten below skip re-deriving it.
    wire_reply = node.listen(reply_secret)
    try:
        # One trusted copy: the caller's request was validated when it was
        # constructed, and every replacement value here is a Port.
        if signature is None:
            outgoing = request._evolve(
                dest=as_port(dest_port), reply=reply_secret, is_reply=False
            )
        else:
            outgoing = request._evolve(
                dest=as_port(dest_port),
                reply=reply_secret,
                signature=as_port(signature),
                is_reply=False,
            )
        # put_owned: `outgoing` is our private copy, never reused after
        # this call, so the F-box may transform it in place.
        accepted = node.put_owned(outgoing, dst_machine)
        if not accepted and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % as_port(dest_port)
            )
        # Fast path first: on the synchronous simulator the reply is
        # already queued, so no clock reads are needed at all.
        frame = node.poll_wire(wire_reply)
        deadline = None
        # The timeout budget is spent on the station's own clock: wall
        # time for real wires, *virtual* time on a DES network (where a
        # wall-clock deadline would be meaningless — the whole wait costs
        # microseconds of host time).
        clock = getattr(node, "clock", None)
        read_clock = time.monotonic if clock is None else lambda: clock.now
        while True:
            if frame is None:
                if deadline is None:
                    deadline = read_clock() + timeout
                remaining = deadline - read_clock()
                frame = _poll_blocking(node, wire_reply, remaining)
                if frame is None:
                    raise RPCTimeout(
                        "no reply within %.3fs from port %r"
                        % (timeout, as_port(dest_port))
                    )
            reply = frame.message
            if expect_signature is not None and reply.signature != expect_signature:
                # A forged reply: keep waiting for the genuine one.
                frame = node.poll_wire(wire_reply)
                continue
            return reply
    finally:
        node.unlisten_wire(wire_reply)


def _poll_blocking(node, wire_port, remaining):
    """Poll a station: sockets block with a timeout, the simulator pumps.

    Feature-detected once through the station's ``supports_poll_timeout``
    capability attribute (Nic: False, SocketNode: True) — the old probe
    caught TypeError around the whole poll, which silently swallowed a
    genuine TypeError raised *inside* delivery and turned it into a bogus
    RPCTimeout.
    """
    if remaining <= 0:
        return None
    if getattr(node, "supports_poll_timeout", False):
        return node.poll_wire(wire_port, timeout=remaining)
    # No timeout concept: delivery happens during put() (synchronous) or
    # during pump() (deferred), never later — drain whatever is still
    # queued, then the poll's answer is final.
    pump = getattr(node, "pump", None)
    if pump is not None:
        pump()
    return node.poll_wire(wire_port)


# ----------------------------------------------------------------------
# pipelined transactions
# ----------------------------------------------------------------------


class AsyncTrans:
    """One in-flight transaction: issued on construction, collected later.

    The constructor runs the issue half of :func:`trans` — fresh reply
    secret, GET on it, request evolved and PUT through the F-box — and
    returns with the transaction in flight.  :meth:`result` runs the
    collect half.  Between the two, any number of sibling transactions
    may be issued on the same station; each holds its own fresh reply
    port, so replies cannot cross (§2.1's freshness argument, unchanged).

    ``reply_secret`` is for internal batch issuers (``trans_many`` draws
    one pooled block of randomness for a whole batch); ordinary callers
    leave it None and the constructor draws from ``rng``.
    """

    __slots__ = ("node", "wire_reply", "expect_signature", "_reply")

    def __init__(
        self,
        node,
        dest_port,
        request,
        rng=None,
        expect_signature=None,
        dst_machine=None,
        signature=None,
        reply_secret=None,
    ):
        if reply_secret is None:
            reply_secret = Port.random(rng or _DEFAULT_RNG)
        self.node = node
        self.expect_signature = expect_signature
        self._reply = None
        wire_reply = self.wire_reply = node.listen(reply_secret)
        try:
            if signature is None:
                outgoing = request._evolve(
                    dest=as_port(dest_port), reply=reply_secret, is_reply=False
                )
            else:
                outgoing = request._evolve(
                    dest=as_port(dest_port),
                    reply=reply_secret,
                    signature=as_port(signature),
                    is_reply=False,
                )
            accepted = node.put_owned(outgoing, dst_machine)
            if not accepted and dst_machine is None:
                raise PortNotLocated(
                    "no server is listening on port %r" % as_port(dest_port)
                )
        except BaseException:
            node.unlisten_wire(wire_reply)
            raise

    @property
    def done(self):
        """True once an acceptable reply has been collected."""
        return self._reply is not None

    def _screen(self, frame):
        """Accept or discard one candidate reply frame; returns the reply
        message (after signature screening) or None."""
        expect = self.expect_signature
        while frame is not None:
            reply = frame.message
            if expect is None or reply.signature == expect:
                self._reply = reply
                self.node.unlisten_wire(self.wire_reply)
                return reply
            frame = self.node.poll_wire(self.wire_reply)
        return None

    def poll(self):
        """Non-blocking: the reply if it has arrived, else None.

        Does not pump the network; combine with ``node.pump()`` for
        manual scheduling.
        """
        if self._reply is not None:
            return self._reply
        return self._screen(self.node.poll_wire(self.wire_reply))

    def result(self, timeout=2.0):
        """Collect the reply, driving delivery as needed.

        On a deferred simulator this pumps the event loop; over sockets
        it blocks on the reply queue.  Raises :class:`RPCTimeout` when no
        acceptable reply arrives, after withdrawing the reply GET.
        """
        reply = self.poll()
        if reply is not None:
            return reply
        node = self.node
        if getattr(node, "supports_poll_timeout", False):
            # Same clock discipline as trans(): the budget is wall time
            # on real wires, virtual time on a DES network.
            clock = getattr(node, "clock", None)
            read_clock = time.monotonic if clock is None else lambda: clock.now
            deadline = read_clock() + timeout
            while True:
                remaining = deadline - read_clock()
                if remaining <= 0:
                    break
                frame = node.poll_wire(self.wire_reply, timeout=remaining)
                if frame is None:
                    break
                reply = self._screen(frame)
                if reply is not None:
                    return reply
        else:
            # Deterministic simulator: pump until the reply lands or no
            # frames remain — an empty loop means the reply will never
            # come, so there is nothing to wait out.
            while True:
                progressed = node.pump()
                reply = self.poll()
                if reply is not None:
                    return reply
                if not progressed:
                    break
        self.cancel()
        raise RPCTimeout(
            "no reply within %.3fs on wire port %r" % (timeout, self.wire_reply)
        )

    def cancel(self):
        """Withdraw the reply GET; idempotent, safe after result()."""
        if self._reply is None:
            self.node.unlisten_wire(self.wire_reply)

    def __repr__(self):
        state = "done" if self._reply is not None else "in flight"
        return "AsyncTrans(%s, wire_reply=%r)" % (state, self.wire_reply)


def trans_many(
    node,
    dest_port,
    requests,
    rng=None,
    timeout=2.0,
    expect_signature=None,
    dst_machine=None,
    signature=None,
):
    """Issue every request with its own fresh reply port, then collect.

    The pipelined counterpart of :func:`trans`: all N requests are put on
    the wire (or the event-loop queues) before the first reply is
    awaited, and the replies come back in request order.  The reply
    secrets for the whole batch are drawn from one pooled randomness
    read, so issuing is O(N) dict work plus exactly N F-box transforms.

    Raises whatever the underlying transactions raise; on any failure all
    outstanding reply GETs are withdrawn, so a failed batch leaves no
    listener-index residue.
    """
    requests = list(requests)
    if not requests:
        return []
    dest = as_port(dest_port)
    rng = rng or _DEFAULT_RNG
    secrets = _draw_secrets(rng, len(requests))
    if (
        type(node) is Nic
        and type(node.network) is SimNetwork
        and node.network._loop is not None
    ):
        for _ in range(4):
            replies = _trans_many_fused(
                node, dest, requests, secrets, expect_signature,
                dst_machine, signature,
            )
            if replies is not None:
                return replies
            # A wire-port collision inside the batch (or with an
            # existing GET).  With 48-bit random ports this is a
            # cosmic-ray case; redrawing fresh secrets resolves it —
            # sharing a sink would cross two transactions' replies.
            secrets = _draw_secrets(rng, len(requests))
        # Randomness is demonstrably broken (four colliding batches);
        # the sequential path below has exactly trans()'s behavior.
    elif type(node) is SocketNode:
        for _ in range(4):
            replies = _trans_many_sockets(
                node, dest, requests, secrets, expect_signature,
                dst_machine, signature, timeout,
            )
            if replies is not None:
                return replies
            secrets = _draw_secrets(rng, len(requests))
    calls = []
    try:
        for request, secret in zip(requests, secrets):
            calls.append(
                AsyncTrans(
                    node,
                    dest,
                    request,
                    expect_signature=expect_signature,
                    dst_machine=dst_machine,
                    signature=signature,
                    reply_secret=secret,
                )
            )
        return [call.result(timeout) for call in calls]
    except BaseException:
        for call in calls:
            call.cancel()
        raise


def _draw_secrets(rng, n):
    """N fresh reply secrets from one pooled randomness read."""
    raw = rng.bytes(PORT_BYTES * n)
    if len(raw) != PORT_BYTES * n:
        raise ValueError("random source returned a short read")
    return [
        Port._unchecked(
            int.from_bytes(raw[i * PORT_BYTES:(i + 1) * PORT_BYTES], "big")
        )
        for i in range(n)
    ]


def _trans_many_sockets(node, dest, requests, secrets, expect_signature,
                        dst_machine, signature, timeout):
    """The batch lane for a :class:`SocketNode` — real pipelining.

    Protocol-identical to N :class:`AsyncTrans` (fresh reply port each,
    same F-box transformation per message, same signature screening) but
    issued batchwise: one ``listen_fresh`` admission swap, one
    ``put_owned_bulk`` burst of datagrams, then the replies are collected
    in request order from the live reply queues (each transaction keeps
    its own ``timeout`` budget, like ``AsyncTrans.result``).  While the
    client blocks on reply *i*, the server is already working on
    *i+1..N* — which is where the multiplicative win over serial
    ``trans`` comes from on a real wire.  Returns None on a reply-port
    collision (caller redraws, exactly like the simulator lane).
    """
    wires = node.listen_fresh(secrets)
    if wires is None:
        return None
    try:
        sig_port = as_port(signature) if signature is not None else None
        outgoing = []
        for request, secret in zip(requests, secrets):
            if sig_port is None:
                outgoing.append(
                    request._evolve(dest=dest, reply=secret, is_reply=False)
                )
            else:
                outgoing.append(
                    request._evolve(
                        dest=dest,
                        reply=secret,
                        signature=sig_port,
                        is_reply=False,
                    )
                )
        accepted = node.put_owned_bulk(outgoing, dst_machine)
        if accepted == 0 and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % (dest,)
            )
        replies = []
        for sink in node.reply_queues(wires):
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RPCTimeout(
                        "pipelined transaction got no reply from port %r"
                        % (dest,)
                    )
                try:
                    frame = sink.get(timeout=remaining)
                except _queue.Empty:
                    raise RPCTimeout(
                        "pipelined transaction got no reply from port %r"
                        % (dest,)
                    ) from None
                reply = frame.message
                if (
                    expect_signature is not None
                    and reply.signature != expect_signature
                ):
                    continue  # a forged reply: keep waiting for the real one
                replies.append(reply)
                break
        return replies
    finally:
        node.unlisten_wire_many(wires)


def _trans_many_fused(node, dest, requests, secrets, expect_signature,
                      dst_machine, signature):
    """The batch lane for a Nic on a deferred-delivery SimNetwork.

    Protocol-identical to N AsyncTrans (fresh reply port each, same F-box
    transformation per message, same signature screening) but issued and
    collected batchwise: one listen_fresh for all reply ports, one
    put_owned_bulk onto one ingress queue, one drain, one take_many.
    Returns None when the batch cannot take the lane (reply-port
    collision), which sends the caller down the generic path.
    """
    wires = node.listen_fresh(secrets)
    if wires is None:
        return None
    try:
        sig_port = as_port(signature) if signature is not None else None
        outgoing = []
        for request, secret in zip(requests, secrets):
            if sig_port is None:
                outgoing.append(
                    request._evolve(dest=dest, reply=secret, is_reply=False)
                )
            else:
                outgoing.append(
                    request._evolve(
                        dest=dest,
                        reply=secret,
                        signature=sig_port,
                        is_reply=False,
                    )
                )
        accepted = node.put_owned_bulk(outgoing, dst_machine)
        if accepted == 0 and dst_machine is None:
            raise PortNotLocated(
                "no server is listening on port %r" % (dest,)
            )
        # Drain everything in flight: requests, handler replies, and
        # whatever those spawn.  The simulator is deterministic, so after
        # the drain each reply either arrived or never will.
        node.network._loop.pump()
        replies = []
        queues = node.take_many(wires)
        wires = None  # GETs withdrawn; nothing left to clean on a raise
        for q in queues:
            frame = q.popleft() if q else None
            if expect_signature is not None:
                while frame is not None and (
                    frame.message.signature != expect_signature
                ):
                    frame = q.popleft() if q else None
            if frame is None:
                raise RPCTimeout(
                    "pipelined transaction got no reply from port %r"
                    % (dest,)
                )
            replies.append(frame.message)
        return replies
    finally:
        if wires is not None:
            node.take_many(wires)
