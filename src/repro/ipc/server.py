"""The server skeleton: dispatch, standard operations, signed replies.

An :class:`ObjectServer` is the reusable shape of every Amoeba service in
§3: a secret get-port, a published put-port and signature image, an
object table protected by one of the §2.3 schemes, and a command
dispatcher.  Subclasses declare operations with the :func:`command`
decorator and get the standard capability operations (INFO, RESTRICT,
REFRESH, DESTROY, TOUCH) for free.

Servers are deliberately ordinary processes: nothing here is privileged,
and several servers can run on one machine or the same server on several
machines (the network round-robins among listeners on a shared port).
"""

import threading
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.core.ports import PrivatePort, as_port
from repro.core.registry import ObjectTable
from repro.core.rights import NO_RIGHTS, Rights
from repro.core.schemes import XorOneWayScheme
from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    AmoebaError,
    BadRequest,
    InvalidCapability,
    SecurityError,
    error_to_code,
)
from repro.ipc import stdops
from repro.net.message import Message


def command(opcode):
    """Declare a method as the handler for operation code ``opcode``.

    The method receives a :class:`RequestContext` and returns a reply
    :class:`Message` (usually via :meth:`RequestContext.ok`).
    """

    def decorate(fn):
        fn._amoeba_command = opcode
        return fn

    return decorate


class DeferredReply:
    """A handle for answering a request after its handler has returned.

    Obtained via :meth:`RequestContext.defer`.  The dispatch loop sends
    nothing for a deferred request; the server calls :meth:`send` later —
    from another request's handler, after a pump, on a timer — and the
    reply then takes the identical signing/sealing path a synchronous
    reply takes.  This is what lets one server answer out of order while
    many transactions are in flight against it.
    """

    __slots__ = ("ctx", "_sent")

    def __init__(self, ctx):
        self.ctx = ctx
        self._sent = False

    @property
    def sent(self):
        return self._sent

    def send(self, reply=None):
        """Send the (possibly out-of-order) reply; at most once.

        ``reply`` defaults to a bare success built from the original
        request, exactly like a handler returning None.
        """
        if self._sent:
            raise AmoebaError("deferred reply already sent")
        self._sent = True
        ctx = self.ctx
        if reply is None:
            reply = ctx.ok()
        ctx.server._send_reply(ctx.frame, reply)

    def error(self, exc):
        """Send an error reply carrying the exception's wire code."""
        self.send(self.ctx.error(exc))


#: In-progress marker inside a ReplyCache: the first copy of the request
#: is still executing, so a duplicate must be *dropped* (the client's
#: retransmission loop will ask again), never run a second time.
_IN_PROGRESS = object()


class ReplyCache:
    """Bounded per-client reply cache: server-side duplicate suppression.

    At-least-once clients (:class:`~repro.ipc.rpc.RetryPolicy`) may
    retransmit a request whose reply was lost; re-executing it would
    double-apply any non-idempotent operation (a bank transfer paid
    twice).  The cache keys each transaction by the pair that is already
    on the wire:

    * ``frame.src`` — the network-stamped source machine address, which
      §2.4's hardware assumption makes unforgeable; and
    * the request's reply put-port ``F(G')`` — fresh per transaction
      (§2.1's freshness argument) yet identical across retransmissions,
      because a retry reuses the same reply secret.

    No sequence numbers, no wire-format change.  An intruder replaying a
    captured frame from its own station presents a *different* ``src``,
    so it can never touch another principal's entries — and the replay's
    double-one-wayed capability still fails validation in the handler,
    exactly as without the cache.

    Both dimensions are LRU-bounded (``clients`` machines x
    ``per_client`` transactions), so the memory cost is a hard constant;
    an evicted entry simply means a sufficiently *stale* duplicate
    re-executes, which is the classic trade-off of bounded dedup.

    States per entry: executing (:data:`_IN_PROGRESS` — duplicates are
    dropped while the first copy runs, including a deferred reply's open
    window) and completed (the cached reply is replayed verbatim;
    error replies replay too — at-least-once applies to outcomes, not
    just successes).
    """

    def __init__(self, per_client=128, clients=64):
        if per_client < 1 or clients < 1:
            raise ValueError("cache bounds must be at least 1")
        self.per_client = per_client
        self.clients = clients
        # src -> OrderedDict[reply_value -> Message | _IN_PROGRESS],
        # both levels in LRU order.
        self._clients = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.busy_drops = 0
        self.evictions = 0

    def begin(self, src, reply_value):
        """Admit one request copy; returns ``(verdict, cached_reply)``.

        ``"miss"`` — first sighting; the entry is marked in-progress and
        the caller must execute the request (and later :meth:`store` or
        :meth:`forget`).  ``"hit"`` — a completed duplicate; replay the
        returned reply.  ``"busy"`` — a duplicate of a still-executing
        request; drop it.
        """
        with self._lock:
            client = self._clients.get(src)
            if client is None:
                if len(self._clients) >= self.clients:
                    self._clients.popitem(last=False)
                    self.evictions += 1
                self._clients[src] = client = OrderedDict()
            else:
                self._clients.move_to_end(src)
            cached = client.get(reply_value)
            if cached is None:
                if len(client) >= self.per_client:
                    client.popitem(last=False)
                    self.evictions += 1
                client[reply_value] = _IN_PROGRESS
                self.misses += 1
                return ("miss", None)
            if cached is _IN_PROGRESS:
                self.busy_drops += 1
                return ("busy", None)
            client.move_to_end(reply_value)
            self.hits += 1
            return ("hit", cached)

    def store(self, src, reply_value, reply):
        """Complete a transaction: future duplicates replay ``reply``.

        A no-op unless the entry is still present (it may have been
        LRU-evicted while the handler ran) — storing an unmarked entry
        would let an unrelated send poison the cache.
        """
        with self._lock:
            client = self._clients.get(src)
            if client is not None and reply_value in client:
                client[reply_value] = reply

    def seed(self, src, reply_value, reply):
        """Install a *completed* entry directly — no begin() preceded it.

        Reboot recovery uses this: transactions whose commit record
        survived the crash are re-admitted as already-answered, so a
        client retry that straddles the restart replays the durable
        reply instead of re-executing.  Same LRU bounds as live entries.
        """
        with self._lock:
            client = self._clients.get(src)
            if client is None:
                if len(self._clients) >= self.clients:
                    self._clients.popitem(last=False)
                    self.evictions += 1
                self._clients[src] = client = OrderedDict()
            else:
                self._clients.move_to_end(src)
            if reply_value not in client and len(client) >= self.per_client:
                client.popitem(last=False)
                self.evictions += 1
            client[reply_value] = reply
            client.move_to_end(reply_value)

    def forget(self, src, reply_value):
        """Withdraw an entry (e.g. an in-progress marker whose deferred
        reply was abandoned), so a future retry re-executes."""
        with self._lock:
            client = self._clients.get(src)
            if client is not None:
                client.pop(reply_value, None)

    def stats(self):
        """Cache counters as a dict (stable keys for benchmarks)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "busy_drops": self.busy_drops,
                "evictions": self.evictions,
                "clients": len(self._clients),
                "entries": sum(len(c) for c in self._clients.values()),
            }

    def __repr__(self):
        return "ReplyCache(hits=%d, misses=%d, busy_drops=%d)" % (
            self.hits, self.misses, self.busy_drops,
        )


class RequestContext:
    """Everything a handler needs about one incoming request."""

    __slots__ = ("server", "frame", "request", "deferred")

    def __init__(self, server, frame, request=None):
        self.server = server
        self.frame = frame
        self.deferred = None
        # The request may differ from frame.message when §2.4 sealing is
        # in use (capabilities have been decrypted back to plaintext).
        self.request = request if request is not None else frame.message

    @property
    def capability(self):
        """The capability in the request header (may be ``None``)."""
        return self.request.capability

    def lookup(self, required=NO_RIGHTS):
        """Validate the request's capability against the object table.

        The single enforcement point: raises if the capability is absent,
        forged, revoked, or lacks the ``required`` rights.
        """
        if self.request.capability is None:
            raise BadRequest("operation requires a capability")
        return self.server.table.lookup(self.request.capability, required)

    def ok(self, data=b"", capability=None, offset=0, size=0, extra_caps=()):
        """Build a success reply to this request.

        Uses the trusted ``reply_to`` path (which range-guards the
        handler-supplied numeric fields), with the server's signature
        secret already stamped — ``_handle_frame`` then skips its own
        stamping copy.

        The returned reply belongs to the dispatch loop, which transforms
        it in place on egress; handlers must return it, not retain it.
        """
        changes = {"data": data, "signature": self.server._signature_port}
        if capability is not None:
            changes["capability"] = capability
        if offset:
            changes["offset"] = offset
        if size:
            changes["size"] = size
        if extra_caps:
            changes["extra_caps"] = tuple(extra_caps)
        return self.request.reply_to(**changes)

    def error(self, exc):
        """Build an error reply carrying the exception's wire code."""
        return self.request.reply_to(
            status=error_to_code(exc),
            data=str(exc).encode("utf-8"),
            signature=self.server._signature_port,
        )

    def defer(self):
        """Answer this request later: returns a :class:`DeferredReply`.

        The handler must still return None; the dispatch loop then skips
        its reply step entirely, and the transaction stays open until
        ``send()`` is called on the handle.  The requesting client is
        simply blocked in (or polling) its reply GET meanwhile — no
        protocol change is visible on the wire.
        """
        if self.deferred is None:
            self.deferred = DeferredReply(self)
        return self.deferred


class ObjectServer:
    """Base class for every object-managing service.

    Parameters
    ----------
    node:
        The station this server receives on.
    scheme:
        A §2.3 protection scheme; defaults to the XOR-one-way scheme that
        production Amoeba used.
    rng:
        Randomness for ports, signatures, and object secrets.
    """

    #: Human-readable service name, reported by STD_INFO.
    service_name = "object server"

    #: Rights mask required for REFRESH (revocation) and DESTROY.
    admin_rights = Rights(stdops.RIGHT_ADMIN)

    def __init__(
        self,
        node,
        scheme=None,
        rng=None,
        get_port=None,
        signature=None,
        sealer=None,
        require_sealed=False,
        authorized_signatures=None,
        workers=0,
        dedup=None,
        store=None,
    ):
        self.node = node
        #: Optional duplicate suppression for at-least-once clients:
        #: ``True`` for a default-bounded :class:`ReplyCache`, a
        #: ReplyCache instance for tuned bounds, None/False (the
        #: default) for the classic execute-every-copy behavior — the
        #: fault path stays fully off unless asked for.
        if dedup is True:
            self.reply_cache = ReplyCache()
        elif dedup:
            self.reply_cache = dedup
        else:
            self.reply_cache = None
        self.rng = rng or RandomSource()
        self.scheme = scheme or XorOneWayScheme()
        self.get_port = get_port or PrivatePort.generate(self.rng)
        #: The server's signature secret S; F(S) is published.
        self.signature = signature or PrivatePort.generate(self.rng)
        self.put_port = self.get_port.public
        #: §2.4 software protection: decrypts request capabilities by
        #: source machine and encrypts reply capabilities by destination.
        self.sealer = sealer
        #: When True, plaintext capabilities are refused outright (a
        #: matrix-protected deployment).
        self.require_sealed = require_sealed
        #: Optional sender authentication (§2.2 digital signatures): a set
        #: of published client images F(S).  When set, requests whose
        #: signature field is not in the set are refused — and since the
        #: F-box one-ways the field, only the true owner of S can produce
        #: a matching value.
        self.authorized_signatures = (
            set(authorized_signatures) if authorized_signatures is not None else None
        )
        #: Optional durability (:class:`~repro.disk.wal.DurableStore`):
        #: the object table write-ahead-logs every surviving mutation to
        #: it, :meth:`checkpoint` snapshots through it, and
        #: :meth:`reboot` replays it after a crash.  With ``dedup`` also
        #: on, every replied transaction additionally logs a commit
        #: record, extending duplicate suppression across reboots.
        self.store = store
        if store is not None:
            self.table = ObjectTable(
                self.scheme, self.put_port, self.rng,
                wal=store, shards=store.shards,
            )
        else:
            self.table = ObjectTable(self.scheme, self.put_port, self.rng)
        if sealer is not None:
            # Revocation hygiene: when a secret dies (REFRESH, DESTROY,
            # aging) the sealer's §2.4 caches must drop that object's
            # triples, or a replayed sealed blob keeps short-circuiting
            # decryption with the revoked capability.  The fan-out names
            # the owning table stripe; the caches compute their own
            # partition from (port, number).
            self.table.on_revocation(
                lambda port, number, _generation, _shard: (
                    sealer.invalidate_object(port, number)
                )
            )
        #: Opt-in parallel dispatch: with ``workers >= 2`` the batch
        #: handler partitions each delivered run by object number and
        #: hands the partitions to a thread pool.  Frames naming the
        #: same object always land in the same partition — handlers
        #: stay single-threaded per object — while distinct objects
        #: proceed in parallel; replies still leave through the batched
        #: egress lane on the dispatching thread, so no station is ever
        #: driven from two threads.
        self.workers = int(workers)
        self._pool = None
        # Serializes node egress when the pool exists: the dispatching
        # thread's bulk reply lane and a DeferredReply.send() fired from
        # whichever pool thread ran the triggering handler must not
        # drive the station at the same time.
        self._egress_lock = threading.Lock()
        self._commands = {}
        self._collect_commands()
        self._running = False
        #: Count of requests handled, by opcode (experiment bookkeeping).
        #: A Counter, so reading a never-seen opcode yields 0.
        self.request_counts = Counter()
        #: Set False to skip the per-request count — throughput harnesses
        #: that never read the counts keep it off the hot path.
        self.count_requests = True
        # The signature secret as a Port, stamped into every reply; built
        # once here instead of once per frame.
        self._signature_port = as_port(self.signature)

    @property
    def signature_image(self):
        """F(S), the published verifier for this server's replies."""
        return self.signature.public

    def _collect_commands(self):
        for name in dir(type(self)):
            member = getattr(type(self), name, None)
            opcode = getattr(member, "_amoeba_command", None)
            if opcode is None:
                continue
            if opcode in self._commands:
                raise ValueError(
                    "duplicate handler for opcode %d in %s"
                    % (opcode, type(self).__name__)
                )
            self._commands[opcode] = getattr(self, name)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Enter the GET loop (register the request handler).

        On a deferred-delivery network the server registers a *batch*
        handler: the event loop then delivers whole ingress-queue runs,
        and :meth:`_handle_frames` hoists the per-request mode checks out
        of the loop.  Socket nodes advertise ``supports_batch_serve``
        (their pump coalesces each recv burst into one delivery) and get
        the same batch handler.  Synchronous simulated networks keep the
        per-frame handler; the dispatch semantics are identical either
        way.
        """
        if self.store is not None and getattr(
            self.store, "needs_recovery", False
        ):
            raise AmoebaError(
                "the durable store holds un-recovered state; "
                "call reboot() before start()"
            )
        if self.workers >= 2 and self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="%s-worker" % type(self).__name__,
            )
        network = getattr(self.node, "network", None)
        if (
            (network is not None and getattr(network, "loop", None) is not None)
            or getattr(self.node, "supports_batch_serve", False)
            or self._pool is not None
        ):
            self.node.serve_batch(self.get_port, self._handle_frames)
        else:
            self.node.serve(self.get_port, self._handle_frame)
        self._running = True
        return self

    def stop(self):
        self.node.unlisten(self.get_port)
        self._running = False
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def running(self):
        return self._running

    # ------------------------------------------------------------------
    # durability protocol
    # ------------------------------------------------------------------

    def checkpoint(self):
        """Snapshot every object-table stripe and truncate its log.

        Run this periodically (a sweep timer, every N requests); each
        stripe is checkpointed under its own brief stripe acquisition,
        so service never stops.
        """
        if self.store is None:
            raise AmoebaError("checkpoint() requires a durable store")
        self.store.snapshot(self.table)

    def reboot(self):
        """Recover this server's state from its durable store.

        The reboot protocol after a crash: construct a *new* server on
        the old disk (the attaching :class:`~repro.disk.wal.DurableStore`
        scans snapshot + log), keep the old ``get_port`` so the old
        put-port still locates, and call ``reboot()`` before
        ``start()``.  Recovery replays every stripe into the table;
        stripes with a suspect log tail come back with regenerated
        secrets and bumped generations, so their outstanding
        capabilities fail §2.2 check validation — clients see
        ``InvalidCapability``/``NoSuchObject`` and re-acquire through
        the retry + re-locate path, exactly the revocation policy.

        With dedup enabled, recovered commit records re-seed the reply
        cache (re-stamped with *this* incarnation's signature secret,
        since the old one died with the process), so a retry straddling
        the reboot replays its durable reply instead of re-executing.

        Returns the :class:`~repro.disk.wal.RecoveryReport`.
        """
        if self.store is None:
            raise AmoebaError("reboot() requires a durable store")
        if len(self.table):
            raise AmoebaError("reboot() must run on an empty object table")
        report = self.store.recover(self.table, rng=self.rng)
        if self.reply_cache is not None:
            for (src, reply_value), raw in report.commits.items():
                try:
                    reply = Message.unpack(raw)
                except Exception:
                    continue  # an unparsable commit is just not replayable
                reply = reply._evolve(signature=self._signature_port)
                self.reply_cache.seed(src, reply_value, reply)
        return report

    def _log_commit(self, src, request, reply):
        """Append a durable commit record for one replied transaction.

        Keyed exactly like the reply cache — (src, reply put-port) — and
        appended to the stripe of the object the request named (any
        stripe is semantically fine; recovery merges all of them), under
        that stripe's lock so snapshot truncation can never drop it.

        Only requests that wrote durable state pay this write: an
        idempotent read or echo re-executes harmlessly after a reboot,
        so its reply needs no disk-backed dedup — the in-memory reply
        cache still suppresses duplicates within the incarnation.
        """
        if not self.store.consume_dirty():
            return
        capability = request.capability
        if capability is None:
            capability = reply.capability
        # A matrix-sealed capability's object number is opaque; stripe 0
        # then hosts the record, which recovery is indifferent to.
        number = getattr(capability, "object", 0) if capability is not None else 0
        self.table.log_commit(number, src, request.reply.value, reply.pack())

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch_request(self, frame, request):
        """The dispatch core shared by per-frame and batch delivery:
        sender auth, unsealing, handler lookup and invocation, and both
        error arms.  Returns the reply to send, or None when the handler
        deferred it.

        Re-entrancy: under deferred delivery the event loop may invoke
        this again (for the next queued request) before an earlier reply
        has been dispatched.  Everything per-request therefore lives in
        locals and the RequestContext — nothing here writes per-request
        state onto self.
        """
        try:
            if self.authorized_signatures is not None:
                self._authenticate_sender(request)
            if request.sealed_caps or self.require_sealed:
                request = self._unseal_request(frame, request)
            ctx = RequestContext(self, frame, request)
            handler = self._commands.get(request.command)
            if handler is None:
                raise BadRequest(
                    "%s does not implement opcode %d"
                    % (self.service_name, request.command)
                )
            reply = handler(ctx)
            if reply is None:
                if ctx.deferred is not None:
                    # The handler took a DeferredReply handle; the
                    # transaction stays open until it sends.
                    return None
                reply = ctx.ok()
        except AmoebaError as exc:
            reply = RequestContext(self, frame, request).error(exc)
        except Exception as exc:
            # A crashing handler must not take the server loop down; the
            # client sees a generic server error, the bug stays server-side.
            reply = RequestContext(self, frame, request).error(
                AmoebaError("internal error in %s: %s" % (self.service_name, exc))
            )
        return reply

    def _dedup_admit(self, frame, request):
        """Consult the reply cache for one request copy.

        Returns True when the caller should execute the request: a cache
        miss (now marked in-progress), or a request with no reply port —
        a one-way send is not a transaction and is never deduplicated.
        A hit replays the cached reply; a busy duplicate is dropped.
        """
        reply_value = request.reply.value
        if not reply_value:
            return True
        verdict, cached = self.reply_cache.begin(frame.src, reply_value)
        if verdict == "miss":
            return True
        if verdict == "hit":
            self._replay_reply(frame.src, cached)
        return False

    def _replay_reply(self, src, cached):
        """Answer a retried transaction from the cache — the handler does
        not run again.  ``put`` (the *copying* egress transform) leaves
        the cached reply pristine for further retries."""
        if self._pool is not None:
            with self._egress_lock:
                self.node.put(cached, src)
        else:
            self.node.put(cached, src)

    def _handle_frame(self, frame):
        request = frame.message
        if self.reply_cache is not None and not self._dedup_admit(
            frame, request
        ):
            return
        if self.count_requests:
            self.request_counts[request.command] += 1
        reply = self._dispatch_request(frame, request)
        if reply is not None:
            self._send_reply(frame, reply)

    def _handle_frames(self, frames):
        """Batch dispatch: one ingress-queue run per call.

        Runs the same :meth:`_dispatch_request` core as per-frame
        delivery — the semantics cannot fork — but hoists the common
        configuration's reply tail: when there is no sealer (so
        :meth:`_send_reply` would never seal) the signed replies for the
        whole run leave in one bulk unicast.  Request counting, when on,
        is one Counter update per frame, as ever.
        """
        pool = self._pool  # snapshot: a racing stop() may null it
        if pool is not None and len(frames) > 1:
            # Pool-safe only when every frame's full object set is
            # knowable from its header capability: a request carrying
            # extra_caps names *several* objects (a bank transfer's
            # payee, a directory install's target) and would race the
            # buckets of the objects it does not key on; a sealed
            # request's objects are unknown until unsealed.  Either in
            # the batch means the whole batch dispatches serially below.
            sealed_matters = self.sealer is not None
            pool_safe = True
            for frame in frames:
                message = frame.message
                if message.extra_caps or (
                    sealed_matters and message.sealed_caps
                ):
                    pool_safe = False
                    break
            if pool_safe:
                self._handle_frames_parallel(frames, pool)
                return
        if self.sealer is not None:
            for frame in frames:
                self._handle_frame(frame)
            return
        dispatch = self._dispatch_request
        count = self.count_requests
        counts = self.request_counts
        signature_port = self._signature_port
        cache = self.reply_cache
        outbox = []
        out_append = outbox.append
        for frame in frames:
            request = frame.message
            if cache is not None:
                reply_value = request.reply.value
                if reply_value:
                    verdict, cached = cache.begin(frame.src, reply_value)
                    if verdict == "busy":
                        continue
                    if verdict == "hit":
                        # Replayed replies ride the same bulk egress as
                        # fresh ones; the evolve copy keeps the cached
                        # original pristine under the in-place flush
                        # transform.
                        out_append((cached._evolve(), frame.src))
                        continue
            if count:
                counts[request.command] += 1
            reply = dispatch(frame, request)
            if reply is None:
                continue  # deferred
            if reply.signature is not signature_port:
                reply = reply._evolve(signature=signature_port)
            if cache is not None and request.reply.value:
                # Store a pristine copy *before* the outbox flush
                # transforms the outgoing one in place.
                cache.store(frame.src, request.reply.value, reply._evolve())
                if self.store is not None:
                    self._log_commit(frame.src, request, reply)
            out_append((reply, frame.src))
        if outbox:
            # One bulk unicast for the whole run's replies; a node
            # without the bulk path (sockets) gets them one put at a
            # time, which is what it would have seen anyway.  With a
            # pool configured this serial tail still serializes against
            # pool-thread deferred sends.
            if self._pool is not None:
                with self._egress_lock:
                    self._flush_outbox(outbox)
            else:
                self._flush_outbox(outbox)

    def _flush_outbox(self, outbox):
        bulk = getattr(self.node, "put_owned_unicast_bulk", None)
        if bulk is not None:
            bulk(outbox)
        else:
            put_owned = self.node.put_owned
            for reply, src in outbox:
                put_owned(reply, src)

    def _handle_frames_parallel(self, frames, pool):
        """Batch dispatch across the worker pool.

        Object affinity: each frame is bucketed by its plaintext
        capability's object number modulo ``workers``, so two requests
        naming the same object are always in the same bucket and a
        bucket runs sequentially on one thread — handlers remain
        single-threaded per object with no handler-side locking, while
        requests for distinct objects proceed on other workers (the
        object table's stripes make the shared lookup path safe).
        Frames with no plaintext capability share the serial bucket 0.
        A batch containing any matrix-sealed request never reaches this
        method at all — :meth:`_handle_frames` dispatches it serially,
        because a sealed capability's object is unknown until unsealed
        and could name the same object as a plaintext request in a
        different bucket, breaking the affinity rule.

        Threading discipline: workers only *compute* replies; request
        counting happens here before the fan-out, and every reply
        leaves through this (the dispatching) thread — the bulk unicast
        lane when no sealer is configured, the seal-and-sign path
        otherwise — so the station underneath is never driven from two
        threads at once.
        """
        count = self.count_requests
        counts = self.request_counts
        workers = self.workers
        cache = self.reply_cache
        buckets = {}
        for frame in frames:
            request = frame.message
            if cache is not None:
                # Dedup on the dispatching thread, before the fan-out:
                # a duplicate must never reach a bucket while (or after)
                # its first copy executes on another worker.
                reply_value = request.reply.value
                if reply_value:
                    verdict, cached = cache.begin(frame.src, reply_value)
                    if verdict == "busy":
                        continue
                    if verdict == "hit":
                        self._replay_reply(frame.src, cached)
                        continue
            if count:
                counts[request.command] += 1
            capability = request.capability
            key = 0 if capability is None else capability.object % workers
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = bucket = []
            bucket.append((frame, request))
        dispatch = self._dispatch_request

        def run(bucket):
            out = []
            for frame, request in bucket:
                reply = dispatch(frame, request)
                if reply is not None:  # None = deferred
                    out.append((frame, reply))
            return out

        ordered = list(buckets.values())
        pending = ordered[1:]
        futures = []
        try:
            for bucket in pending:
                futures.append(pool.submit(run, bucket))
        except RuntimeError:
            # The pool was shut down mid-batch (a racing stop()); the
            # unsubmitted buckets run inline below — still one bucket at
            # a time, so the per-object affinity rule holds.
            pass
        results = [run(ordered[0])]
        for bucket in pending[len(futures):]:
            results.append(run(bucket))
        results.extend(future.result() for future in futures)
        if self.sealer is not None:
            for pairs in results:
                for frame, reply in pairs:
                    self._send_reply(frame, reply)
            return
        signature_port = self._signature_port
        outbox = []
        for pairs in results:
            for frame, reply in pairs:
                if reply.signature is not signature_port:
                    reply = reply._evolve(signature=signature_port)
                if cache is not None and frame.message.reply.value:
                    cache.store(
                        frame.src, frame.message.reply.value, reply._evolve()
                    )
                    if self.store is not None:
                        self._log_commit(frame.src, frame.message, reply)
                outbox.append((reply, frame.src))
        if outbox:
            with self._egress_lock:
                self._flush_outbox(outbox)

    def _send_reply(self, frame, reply):
        """Seal, sign, and send one reply (shared by the dispatch loop and
        :class:`DeferredReply`)."""
        if self.sealer is not None and (reply.capability or reply.extra_caps):
            reply = self.sealer.seal_message(reply, frame.src)
        # Replies are signed: the F-box will transform this secret S into
        # the published image F(S) on the wire.  The reply is unicast to
        # the requesting machine (its address came stamped on the frame).
        # ctx.ok/ctx.error pre-stamp the signature; only hand-built
        # handler replies still need the extra copy here.
        if reply.signature is not self._signature_port:
            # A hand-built handler reply: stamp a private copy, which is
            # then ours to transform in place.
            reply = reply._evolve(signature=self._signature_port)
        if self.reply_cache is not None:
            reply_value = frame.message.reply.value
            if reply_value:
                # Cache the fully formed (sealed, signed) reply before
                # put_owned transforms the outgoing copy in place —
                # deferred replies complete their transaction here too.
                self.reply_cache.store(
                    frame.src, reply_value, reply._evolve()
                )
                if self.store is not None:
                    # Durable commit *before* the reply leaves: a retry
                    # arriving after a crash-and-reboot must find the
                    # record, or it would re-execute a non-idempotent
                    # operation whose first reply was already delivered.
                    self._log_commit(frame.src, frame.message, reply)
        if self._pool is not None:
            # A DeferredReply.send() may run on a pool thread while the
            # dispatching thread is mid-egress; serialize the station.
            with self._egress_lock:
                self.node.put_owned(reply, frame.src)
        else:
            self.node.put_owned(reply, frame.src)

    def _authenticate_sender(self, request):
        if self.authorized_signatures is None:
            return
        if request.signature not in self.authorized_signatures:
            raise SecurityError(
                "%s requires an authorized client signature" % self.service_name
            )

    def authorize_client(self, signature_image):
        """Admit a client by its published signature image F(S)."""
        if self.authorized_signatures is None:
            self.authorized_signatures = set()
        self.authorized_signatures.add(signature_image)

    def sweep(self):
        """One garbage-collection pass over the object table.

        Objects not proven live (looked up or touched) since the last
        ``default_lifetime`` sweeps are destroyed through the same
        :meth:`on_destroy` hook as an explicit STD_DESTROY.
        """
        return self.table.age(on_expire=self.on_destroy)

    def _unseal_request(self, frame, request):
        if request.sealed_caps:
            if self.sealer is None:
                raise BadRequest(
                    "%s is not configured for sealed capabilities"
                    % self.service_name
                )
            return self.sealer.unseal_message(request, frame.src)
        if self.require_sealed and (
            request.capability is not None or request.extra_caps
        ):
            raise InvalidCapability(
                "%s only accepts matrix-sealed capabilities" % self.service_name
            )
        return request

    # ------------------------------------------------------------------
    # standard operations (§2.3)
    # ------------------------------------------------------------------

    @command(stdops.STD_INFO)
    def _std_info(self, ctx):
        entry, rights = ctx.lookup()
        return ctx.ok(data=self.describe(entry).encode("utf-8"))

    @command(stdops.STD_RESTRICT)
    def _std_restrict(self, ctx):
        if ctx.capability is None:
            raise BadRequest("RESTRICT requires a capability")
        keep_mask = Rights(ctx.request.size & 0xFF)
        restricted = self.table.restrict(ctx.capability, keep_mask)
        return ctx.ok(capability=restricted)

    @command(stdops.STD_REFRESH)
    def _std_refresh(self, ctx):
        if ctx.capability is None:
            raise BadRequest("REFRESH requires a capability")
        fresh = self.table.refresh(ctx.capability, required=self.admin_rights)
        return ctx.ok(capability=fresh)

    @command(stdops.STD_DESTROY)
    def _std_destroy(self, ctx):
        if ctx.capability is None:
            raise BadRequest("DESTROY requires a capability")
        entry, _ = self.table.lookup(ctx.capability, self.admin_rights)
        self.on_destroy(entry)
        self.table.destroy(ctx.capability, required=self.admin_rights)
        return ctx.ok()

    @command(stdops.STD_TOUCH)
    def _std_touch(self, ctx):
        ctx.lookup()
        return ctx.ok()

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------

    def describe(self, entry):
        """One-line object description for STD_INFO."""
        return "%s object %d" % (self.service_name, entry.number)

    def on_destroy(self, entry):
        """Release any resources held by an object about to be destroyed."""

    def __repr__(self):
        return "%s(port=%012x, objects=%d)" % (
            type(self).__name__,
            self.put_port.value,
            len(self.table),
        )
