"""Standard operation codes and rights conventions shared by all servers.

Every object server in this reproduction understands the standard
operations below in addition to its own command set; they implement the
generic capability manipulations of §2.3 (fabricating sub-capabilities,
revocation by refreshing the random number, destruction).
"""

#: Ask the server to describe an object (no rights required).
STD_INFO = 1

#: "Send the capability back to the server along with a bit mask and a
#: request to fabricate a new capability with fewer rights" (§2.3).  The
#: keep-mask travels in the request's ``size`` field.
STD_RESTRICT = 2

#: Revocation (§2.3): replace the object's random number, invalidating
#: every outstanding capability, and return a fresh owner capability.
STD_REFRESH = 3

#: Destroy the object and recycle its number.
STD_DESTROY = 4

#: Validate a capability and bump the object's touch count (used by
#: garbage-collecting servers).
STD_TOUCH = 5

#: Kernel-level broadcast: "where is the machine serving this put-port?"
LOCATE = 10

#: Kernel-level unicast answer to :data:`LOCATE`.
HERE = 11

#: Replica control plane (server-to-server, signature-authenticated):
#: install a revocation decided by a peer replica of the same logical
#: service.  Payload: object number, new generation, tagged new secret.
CTL_APPLY_REFRESH = 40

#: Peer-decided destruction; payload: object number, generation.
CTL_APPLY_DESTROY = 41

#: Liveness/introspection probe answered by any replica with a small
#: JSON stats blob (objects held, dedup counters, fan-out failures).
CTL_HEALTH = 42

#: First command number available to individual servers.
USER_BASE = 100

#: Rights-bit convention used by the servers in this repository: bit 7 is
#: the owner/admin bit protecting REFRESH and DESTROY.  (The paper only
#: requires that revocation "be protected with a bit in the RIGHTS field";
#: which bit is server policy.)
RIGHT_ADMIN = 0x80
