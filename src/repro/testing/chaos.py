"""Deterministic chaos engine: composed faults + machine-checked invariants.

The paper's whole security argument (§2.2-§2.4) is that sparse
capabilities stay correct on an *adversarial* network.  The repo grew
the fault planes one at a time — a lossy wire (:mod:`repro.net.faults`),
a failing disk (:mod:`repro.disk.diskfaults`), replica crashes
(:mod:`repro.ipc.replica`) — but a real outage composes them: a
partition lands mid-revocation-fan-out, power fails while the network
is down, an intruder replays captured frames from the dark side of a
cut.  This module aims all of those planes at one world *at once*, over
DES virtual time, from one seed.

:class:`ScenarioRunner` builds a virtual-clock world (a replicated
capability service, or a single durable one), lets a timeline of
``at(t_virtual, name, action)`` entries cut/heal links, kill/reboot
servers, inject per-link fault bursts and replay captured traffic while
a scripted client workload runs — and records everything into an
ordered ``trace``.  Two runs with the same seed produce bit-identical
traces; the benchmark sweep (:mod:`benchmarks.bench_chaos`) asserts
that, which is the CI determinism contract every DES harness shares.

The invariant library (module functions taking a runner, returning
violation strings) is evaluated mid-run and at quiesce:

* :func:`effectively_once` — no (src, reply-port) transaction key
  executes twice on any one replica, however many retransmissions the
  faults provoked (the ReplyCache + commit-record contract);
* :func:`conservation` — every replica's counter moved exactly as many
  times as its execution log says: no phantom mutations, none lost;
* :func:`acked_implies_executed` — every client-acked mutation executed
  somewhere (acks cannot outnumber executions);
* :func:`convergence` — surviving replicas agree per object on secret
  and revocation generation (rights state), the §2.4 fan-out postcondition;
* :func:`no_phantom_authority` (factory) — a revoked capability
  validates *nowhere* once the fan-out has converged;
* :func:`no_lost_authority` (factory) — a live capability validates
  everywhere with exactly its intended rights, and a real RPC through
  it succeeds after heal.

Durability (post-reboot state ⊇ acked mutations) is checked by the
reboot action itself recording the recovered counter value; scenarios
assert ``acked <= recovered``.
"""

import random

from repro.core.rights import Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    AmoebaError,
    CapabilityError,
    PartitionSuspected,
    PortNotLocated,
    RPCTimeout,
)
from repro.ipc import stdops
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator
from repro.ipc.replica import (
    ReplicaObjectServer,
    ReplicatedObjectServer,
    ROUND_ROBIN,
)
from repro.ipc.rpc import RetryPolicy
from repro.ipc.server import command
from repro.net.faults import FaultPlan, FaultSpec
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sched import LatencyModel, VirtualClock

__all__ = [
    "CMD_INCR",
    "CMD_GET",
    "RIGHT_READ",
    "RIGHT_WRITE",
    "ChaosCounterServer",
    "ScenarioRunner",
    "effectively_once",
    "conservation",
    "acked_implies_executed",
    "convergence",
    "no_phantom_authority",
    "no_lost_authority",
    "STANDARD_INVARIANTS",
]

#: The chaos counter's per-server rights bits (RIGHT_ADMIN = 0x80 stays
#: the refresh/destroy gate, as on every server).
RIGHT_READ = Rights(0x01)
RIGHT_WRITE = Rights(0x02)

CMD_INCR = stdops.USER_BASE + 20
CMD_GET = stdops.USER_BASE + 21


class ChaosCounterServer(ReplicaObjectServer):
    """A replicable, durable-capable counter with an execution audit.

    The minimal *non-idempotent* service: INCR must execute effectively
    once per transaction or the counter drifts — which makes the counter
    itself a tamper-evident ledger for the chaos invariants.  Every
    successful operation is appended to ``execution_log`` as
    ``(source machine, reply-port value, op)`` — the same (src, G')
    pair the ReplyCache dedups on — *after* capability validation, so
    the log records authorized executions only (the ROADMAP's audit
    trail: which capability holder drove each operation).
    """

    service_name = "chaos counter"

    def __init__(self, node, **kwargs):
        kwargs.setdefault("dedup", True)
        super().__init__(node, **kwargs)
        #: (frame.src, request.reply.value, op) per authorized execution.
        self.execution_log = []

    @command(CMD_INCR)
    def _cmd_incr(self, ctx):
        entry, _ = self.table.lookup(ctx.capability, RIGHT_WRITE)
        entry.data = entry.data + 1
        if self.store is not None:
            # Re-log the mutated payload so the WAL carries it and the
            # commit record (durable dedup) fires for this transaction.
            self.table.persist(entry.number)
        self.execution_log.append(
            (ctx.frame.src, ctx.request.reply.value, "incr")
        )
        return ctx.ok(data=b"%d" % entry.data)

    @command(CMD_GET)
    def _cmd_get(self, ctx):
        entry, _ = self.table.lookup(ctx.capability, RIGHT_READ)
        self.execution_log.append(
            (ctx.frame.src, ctx.request.reply.value, "get")
        )
        return ctx.ok(data=b"%d" % entry.data)


# ----------------------------------------------------------------------
# the scenario runner
# ----------------------------------------------------------------------


class ScenarioRunner:
    """One seeded chaos scenario over a DES world.

    Parameters
    ----------
    name:
        Scenario label (goes in the trace and the result dict).
    seed:
        The single seed: fault plan, latency jitter, client randomness,
        retry backoff and the runner's own scalar RNG all derive from
        it, so a scenario replays bit-identically.
    replicas:
        Pool size (1 builds a single unreplicated server).
    durable:
        Back the (single) server with a WAL+snapshot store on a virtual
        disk, enabling :meth:`power_fail` / :meth:`reboot_server`.
    """

    def __init__(self, name, seed, replicas=3, durable=False,
                 policy=ROUND_ROBIN, rtt_ms=2.8, jitter_ms=0.2,
                 client_timeout=1.2, drop=0.0, delay=0.0,
                 retry_attempts=3):
        self.name = name
        self.seed = seed
        self.rng = random.Random(seed)
        self.trace = []
        self.violations = []
        self.acked = 0
        self.failed = 0
        self.attempts = 0
        self.recovered_value = None
        self.acked_at_reboot = 0
        self.plan = FaultPlan(seed=seed, drop=drop, delay=delay)
        self.clock = VirtualClock()
        self.net = SimNetwork(
            clock=self.clock,
            latency=LatencyModel(rtt_ms=rtt_ms, jitter_ms=jitter_ms,
                                 seed=seed),
            faults=self.plan,
        )
        if durable and replicas != 1:
            raise ValueError("the durable scenario runs a single server")
        self.durable = durable
        self.disk = None
        if durable:
            from repro.disk.virtualdisk import VirtualDisk
            from repro.disk.wal import DefaultCodec, DurableStore

            self.disk = VirtualDisk(8192)
            server = ChaosCounterServer(
                Nic(self.net),
                rng=RandomSource(seed=seed),
                store=DurableStore(self.disk, codec=DefaultCodec()),
            ).start()
            self.service = None
            self.servers = [server]
            self.put_port = server.put_port
            self.capability = server.table.create(0)
            self._signature_image = server.signature_image
            locator = None
        else:
            self.service = ReplicatedObjectServer(
                self.net,
                replicas=replicas,
                rng=RandomSource(seed=seed),
                policy=policy,
                server_cls=ChaosCounterServer,
                fanout_retry=RetryPolicy(attempts=1, rto=0.02, cap=0.1,
                                         seed=seed),
                fanout_timeout=0.25,
            ).start()
            self.servers = self.service.servers
            self.put_port = self.service.put_port
            self.capability = self.service.create(0)
            self._signature_image = self.servers[0].signature_image
        client_nic = Nic(self.net)
        locator = None
        if not durable:
            # The locator shares the workload client's station, so
            # partitioning the client also silences its LOCATEs.
            locator = Locator(client_nic,
                              rng=RandomSource(seed="%d-locator" % seed))
        self.client = self._make_client("client", node=client_nic,
                                        locator=locator,
                                        timeout=client_timeout,
                                        retry_attempts=retry_attempts)
        self.locator = locator
        self._captured = None
        self._continuous = []
        self._check_every = 8

    # -- stations -------------------------------------------------------

    def _make_client(self, label, node=None, locator=None, timeout=1.2,
                     retry_attempts=3):
        """A blocking client on its own station, fully seed-derived."""
        return ServiceClient(
            node if node is not None else Nic(self.net),
            self.put_port,
            rng=RandomSource(seed="%d-%s" % (self.seed, label)),
            expect_signature=self._signature_image,
            locator=locator,
            timeout=timeout,
            retry=RetryPolicy(attempts=retry_attempts, rto=0.03, cap=0.25,
                              seed=self.seed),
        )

    @property
    def machines(self):
        """Server machine addresses, pool order."""
        return [s.node.address for s in self.servers]

    @property
    def client_machine(self):
        return self.client.node.address

    # -- trace ----------------------------------------------------------

    def note(self, kind, detail):
        self.trace.append((round(self.clock.now, 9), kind, detail))

    # -- timeline -------------------------------------------------------

    def at(self, t_virtual, name, action):
        """Schedule ``action()`` at virtual instant ``t_virtual``.

        Timers ride the DES event heap, so they fire in arrival order
        even while the workload is blocked inside a transaction — a cut
        lands mid-poll exactly as a real outage would.
        """

        def fire():
            self.note("action", name)
            action()
            self._run_continuous()

        self.net.loop.call_at(t_virtual, fire)
        return self

    # -- fault actions (close over the runner; use them inside at()) ----

    def sever(self, src=None, dst=None):
        self.plan.sever(src=src, dst=dst)

    def heal(self, src=None, dst=None):
        self.plan.heal(src=src, dst=dst)

    def partition_client(self, symmetric=True):
        """Cut the client's station off from every server."""
        self.plan.partition([self.client_machine], self.machines,
                            symmetric=symmetric)

    def heal_client(self):
        self.plan.heal_partition([self.client_machine], self.machines)

    def isolate_replica(self, index):
        """Cut one replica off from peers *and* clients, both directions."""
        self.plan.isolate(self.machines[index])

    def rejoin_replica(self, index):
        self.plan.rejoin(self.machines[index])

    def burst(self, src, dst=None, drop=0.0, delay=0.0, corrupt=0.0):
        """Per-link fault burst: override one link's FaultSpec."""
        key = src if dst is None else (src, dst)
        self.plan.links[key] = FaultSpec(drop=drop, delay=delay,
                                        corrupt=corrupt)

    def calm(self, src, dst=None):
        """End a :meth:`burst` on the link."""
        self.plan.links.pop(src if dst is None else (src, dst), None)

    def kill_replica(self, index):
        """Crash one replica (stays in the registry: clients discover)."""
        self.service.kill(index)

    def reconcile(self):
        """Re-drive failed revocation fan-outs (call after heal)."""
        repaired = self.service.reconcile()
        self.note("reconcile", "repaired=%d" % repaired)
        return repaired

    def refresh(self, capability=None):
        """Revoke via a control client: REFRESH on replica 0's machine.

        Runs direct (not through the workload client) so it can be
        fired from a timeline timer while the workload is mid-call."""
        control = self._make_client("control", timeout=2.0,
                                    retry_attempts=2)
        reply = control.call(
            stdops.STD_REFRESH,
            capability=capability if capability is not None
            else self.capability,
        )
        return reply.capability

    def power_fail(self, after_writes=7):
        """Durable only: power fails mid-checkpoint; the server dies."""
        from repro.disk.diskfaults import DiskFaultPlan
        from repro.errors import PowerFailure

        server = self.servers[0]
        self.acked_at_reboot = self.acked
        self.disk.faults = DiskFaultPlan(power_fail_after=after_writes)
        failed = False
        try:
            server.checkpoint()
        except PowerFailure:
            failed = True
        server.stop()
        self.disk.faults.revive()
        self.disk.faults = None
        self.note("power_fail", "mid_checkpoint=%s" % failed)

    def reboot_server(self):
        """Durable only: respawn on the same disk + get-port, recover."""
        from repro.disk.wal import DefaultCodec, DurableStore

        old = self.servers[0]
        respawn = ChaosCounterServer(
            Nic(self.net),
            get_port=old.get_port,
            rng=RandomSource(seed="%d-respawn" % self.seed),
            store=DurableStore(self.disk, codec=DefaultCodec()),
        )
        report = respawn.reboot()
        respawn.start()
        self.servers[0] = respawn
        self._signature_image = respawn.signature_image
        self.client.expect_signature = respawn.signature_image
        entry = respawn.table._entry(self.capability.object)
        self.recovered_value = None if entry is None else entry.data
        self.note(
            "reboot",
            "entries=%d suspect=%s value=%s"
            % (report.entries_restored, sorted(report.suspect_stripes),
               self.recovered_value),
        )
        return report

    # -- intruder capture / replay --------------------------------------

    def start_capture(self):
        """Tap the wire like an intruder: record INCR request messages."""
        captured = []

        def tap(frame):
            message = frame.message
            if message.command == CMD_INCR and message.capability is not None:
                captured.append(message)

        self.net.add_tap(tap)
        self._captured = captured
        return captured

    def replay_captured(self, limit=None):
        """Re-put captured requests from an intruder station, verbatim.

        The §2.2 threat: same capability bytes, same reply port — only
        the unforgeable source address differs.  Counted executions from
        the intruder's machine are phantom authority."""
        intruder = Nic(self.net)
        self.intruder_machine = intruder.address
        replayed = self._captured if limit is None else self._captured[:limit]
        targets = [s.node.address for s in self.servers if s.running]
        if not targets:
            self.note("replay", "frames=0 (no live replicas)")
            return 0
        for i, message in enumerate(list(replayed)):
            self.net.send(intruder, message,
                          dst_machine=targets[i % len(targets)])
        self.note("replay", "frames=%d" % len(replayed))
        return len(replayed)

    def intruder_executions(self):
        machine = getattr(self, "intruder_machine", None)
        if machine is None:
            return 0
        return sum(
            1 for server in self.servers
            for (src, _value, _op) in server.execution_log
            if src == machine
        )

    # -- workload -------------------------------------------------------

    def incr(self, capability=None):
        """One INCR through the workload client; failures are survivable
        scenario events, not errors."""
        self.attempts += 1
        try:
            reply = self.client.call(
                CMD_INCR,
                capability=capability if capability is not None
                else self.capability,
            )
        except (RPCTimeout, PortNotLocated, CapabilityError,
                AmoebaError) as exc:
            self.failed += 1
            self.note("fail", type(exc).__name__)
            return None
        self.acked += 1
        self.note("ack", "incr=%s" % reply.data.decode("ascii"))
        return int(reply.data)

    def run_ops(self, n, capability=None, spacing=0.0):
        """The serial increment storm; continuous checks every K acks.

        ``spacing`` burns that many virtual seconds between ops, which
        is how a workload is stretched *across* the timeline's cuts and
        heals instead of finishing before the first one fires."""
        for i in range(n):
            self.incr(capability)
            if spacing:
                self.sleep(spacing)
            if self._continuous and (i + 1) % self._check_every == 0:
                self._run_continuous()
        return self

    def sleep(self, dt):
        """Let ``dt`` virtual seconds pass: deliver (and fire) every
        event and timer due in the window, then advance the clock."""
        deadline = self.clock.now + dt
        self.net.loop.pump(until=deadline)
        self.clock.advance_to(deadline)
        return self

    def quiesce(self):
        """Drain every in-flight frame and pending timer."""
        self.net.loop.run()
        self.note("quiesce", "pending=0")
        return self

    # -- invariants -----------------------------------------------------

    def continuously(self, *checkers):
        """Also evaluate these checkers after every timeline action and
        every ``_check_every`` acks, not just at quiesce."""
        self._continuous.extend(checkers)
        return self

    def _run_continuous(self):
        for checker in self._continuous:
            self._record(checker)

    def _record(self, checker):
        found = checker(self)
        for violation in found:
            if violation not in self.violations:
                self.violations.append(violation)
                self.note("violation", violation)

    def check(self, *checkers):
        """Evaluate invariant checkers now; violations accumulate."""
        for checker in checkers:
            self._record(checker)
        return self

    def result(self):
        """The scenario verdict — deterministic, JSON-shaped."""
        return {
            "name": self.name,
            "seed": self.seed,
            "attempts": self.attempts,
            "acked": self.acked,
            "failed": self.failed,
            "violations": list(self.violations),
            "trace": [list(entry) for entry in self.trace],
            "virtual_seconds": round(self.clock.now, 9),
            "faults": self.plan.stats(),
        }


# ----------------------------------------------------------------------
# the invariant library
# ----------------------------------------------------------------------


def _live_servers(runner):
    return [s for s in runner.servers if s.running]


def effectively_once(runner):
    """No transaction key executes twice on any one replica.

    The key is (source machine, reply put-port value) — what the
    ReplyCache dedups on and what commit records re-seed across a
    reboot.  A duplicate means a retransmission re-executed."""
    violations = []
    for i, server in enumerate(runner.servers):
        seen = set()
        for src, value, op in server.execution_log:
            key = (src, value)
            if key in seen:
                violations.append(
                    "effectively_once: replica %d re-executed %s for "
                    "src=%s reply=%d" % (i, op, src, value)
                )
            seen.add(key)
    return violations


def conservation(runner):
    """Each replica's counter moved exactly once per logged INCR —
    mutations are conserved: none invented, none lost."""
    violations = []
    number = runner.capability.object
    for i, server in enumerate(runner.servers):
        if not server.running:
            continue
        entry = server.table._entry(number)
        if entry is None:
            continue  # destroyed/re-keyed object: nothing to conserve
        executed = sum(
            1 for (_src, _value, op) in server.execution_log if op == "incr"
        )
        base = 0 if not runner.durable else (
            # A rebooted incarnation starts from the recovered value;
            # only executions logged by *this* incarnation moved it.
            entry.data - executed
        )
        if not runner.durable and entry.data - executed != 0:
            violations.append(
                "conservation: replica %d counter=%d but %d executions"
                % (i, entry.data, executed)
            )
        elif runner.durable and base < 0:
            violations.append(
                "conservation: durable counter=%d under %d executions"
                % (entry.data, executed)
            )
    return violations


def acked_implies_executed(runner):
    """Every acked INCR executed somewhere (acks never exceed
    executions; with retries, executions may exceed acks)."""
    executed = sum(
        1 for server in runner.servers
        for (_src, _value, op) in server.execution_log if op == "incr"
    )
    if runner.acked > executed:
        return [
            "acked_implies_executed: %d acks but only %d executions"
            % (runner.acked, executed)
        ]
    return []


def convergence(runner):
    """Surviving replicas agree per object on (secret, generation) —
    rights/revocation state, the fan-out postcondition.  Payload data is
    the service's own consistency problem (as in Amoeba) and is audited
    by :func:`conservation` instead."""
    live = _live_servers(runner)
    if len(live) < 2:
        return []
    reference = {
        number: (secret, generation)
        for number, secret, _data, generation in live[0].table.snapshot_entries()
    }
    violations = []
    for server in live[1:]:
        other = {
            number: (secret, generation)
            for number, secret, _data, generation
            in server.table.snapshot_entries()
        }
        if other != reference:
            drift = sorted(
                set(reference.items()) ^ set(other.items()),
                key=lambda item: item[0],
            )
            violations.append(
                "convergence: generation/secret state diverges on objects %s"
                % sorted({number for number, _state in drift})
            )
    return violations


def no_phantom_authority(capability):
    """Checker factory: ``capability`` (revoked/stale) must validate on
    no surviving replica."""

    def checker(runner):
        violations = []
        for i, server in enumerate(runner.servers):
            if not server.running:
                continue
            try:
                server.table.lookup(capability)
            except AmoebaError:
                continue
            violations.append(
                "no_phantom_authority: revoked capability for object %d "
                "still validates on replica %d" % (capability.object, i)
            )
        return violations

    return checker


def no_lost_authority(capability, rights=None):
    """Checker factory: ``capability`` must validate on every surviving
    replica, with exactly ``rights`` when given."""

    def checker(runner):
        violations = []
        for i, server in enumerate(runner.servers):
            if not server.running:
                continue
            try:
                _entry, effective = server.table.lookup(capability)
            except AmoebaError as exc:
                violations.append(
                    "no_lost_authority: live capability for object %d "
                    "rejected on replica %d (%s)"
                    % (capability.object, i, type(exc).__name__)
                )
                continue
            if rights is not None and int(effective) != int(rights):
                violations.append(
                    "no_lost_authority: object %d rights 0x%02x != "
                    "intended 0x%02x on replica %d"
                    % (capability.object, int(effective), int(rights), i)
                )
        return violations

    return checker


def no_intruder_executions(runner):
    """After revocation converged, replayed frames executed nothing."""
    count = runner.intruder_executions()
    if count:
        return [
            "no_intruder_executions: %d operations executed from the "
            "intruder's machine" % count
        ]
    return []


def durability(runner):
    """Post-reboot state covers every acked mutation: the recovered
    counter is at least the acked count at reboot (and never exceeds
    total attempts)."""
    if runner.recovered_value is None:
        return []
    violations = []
    if runner.recovered_value < runner.acked_at_reboot:
        violations.append(
            "durability: recovered counter %d < %d acked increments"
            % (runner.recovered_value, runner.acked_at_reboot)
        )
    if runner.recovered_value > runner.attempts:
        violations.append(
            "durability: recovered counter %d exceeds %d attempts"
            % (runner.recovered_value, runner.attempts)
        )
    return violations


#: The suite every scenario can run at quiesce; capability-specific
#: checkers (no_phantom/no_lost/durability) are added per scenario.
STANDARD_INVARIANTS = (
    effectively_once,
    conservation,
    acked_implies_executed,
    convergence,
)
