"""Test-harness subsystems: deterministic chaos scenarios and their
machine-checked invariants (:mod:`repro.testing.chaos`)."""
