"""A whole machine: NIC, kernel broadcast services, memory server.

The paper's hardware unit is a processor module behind an F-box.  A
:class:`Machine` bundles what every such module runs: the network
interface, the kernel's LOCATE responder, a port-location cache, an
(optional) in-kernel memory server, and bookkeeping for boot
announcements heard on the wire.
"""

from repro.core.ports import as_port
from repro.crypto.randomsrc import RandomSource
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator, install_locate_responder
from repro.kernel.memory import MemoryClient, MemoryServer
from repro.net.nic import Nic
from repro.softprot.boot import Announcement

#: Broadcast command for §2.4 boot announcements.
ANNOUNCE = 21


class Machine:
    """One processor module attached to a simulated network."""

    def __init__(
        self,
        network,
        rng=None,
        scheme=None,
        memory_capacity=16 << 20,
        with_memory_server=True,
        name=None,
    ):
        self.network = network
        self.rng = rng or RandomSource()
        self.nic = Nic(network)
        self.name = name or ("machine-%d" % self.nic.address)
        install_locate_responder(self.nic)
        self.locator = Locator(self.nic, self.rng)
        #: Service announcements heard on the wire: name -> Announcement.
        self.heard_announcements = {}
        self.nic.on_broadcast(self._on_announce)
        self.memory_server = None
        if with_memory_server:
            self.memory_server = MemoryServer(
                self.nic, capacity=memory_capacity, scheme=scheme, rng=self.rng
            ).start()

    @property
    def address(self):
        """The unforgeable source address of this machine's NIC."""
        return self.nic.address

    @property
    def memory_port(self):
        """Public put-port of this machine's memory server."""
        if self.memory_server is None:
            raise RuntimeError("%s runs no memory server" % self.name)
        return self.memory_server.put_port

    # ------------------------------------------------------------------
    # clients
    # ------------------------------------------------------------------

    def client_for(self, port_or_capability, **kwargs):
        """A :class:`ServiceClient` for a put-port or a capability's server."""
        port = getattr(port_or_capability, "port", None) or as_port(
            port_or_capability
        )
        kwargs.setdefault("rng", self.rng)
        kwargs.setdefault("locator", self.locator)
        return ServiceClient(self.nic, port, **kwargs)

    def memory_client(self, remote_port=None, **kwargs):
        """A typed memory client for this or a *remote* machine.

        "By directing the CREATE SEGMENT requests to a memory server on a
        remote machine, the parent can create the child wherever it wants
        to" (§3.1).
        """
        port = remote_port or self.memory_port
        kwargs.setdefault("rng", self.rng)
        kwargs.setdefault("locator", self.locator)
        return MemoryClient(self.nic, port, **kwargs)

    # ------------------------------------------------------------------
    # boot announcements (§2.4)
    # ------------------------------------------------------------------

    def announce(self, name, put_port, public_key):
        """Broadcast this machine's public service identity."""
        from repro.net.message import Message

        announcement = Announcement(
            name=name, put_port=put_port, public_key=public_key
        )
        self.nic.put_broadcast(
            Message(command=ANNOUNCE, data=announcement.pack())
        )
        return announcement

    def _on_announce(self, frame):
        if frame.message.command != ANNOUNCE:
            return
        try:
            announcement = Announcement.unpack(frame.message.data)
        except Exception:
            return
        self.heard_announcements[announcement.name] = announcement

    def __repr__(self):
        return "Machine(%r, address=%d)" % (self.name, self.address)
