"""The (minimal) kernel: machines, processes, and the memory server.

The paper's kernel philosophy is "as small as possible": the only kernel
component that manages objects is the memory server (§3.1), and even it
"communicates with other processes via the normal message protocol so
that its clients do not perceive it as being special in any way".
"""

from repro.kernel.machine import Machine
from repro.kernel.memory import MemoryClient, MemoryServer
from repro.kernel.process import Process, ProcessState

__all__ = ["Machine", "MemoryClient", "MemoryServer", "Process", "ProcessState"]
