"""Process objects managed by the memory server (§3.1).

A process is built from segments (text, data, stack) previously created
with CREATE SEGMENT, assembled by MAKE PROCESS, and thereafter "started,
stopped, and generally manipulated" through its process capability.
Execution itself is simulated — a process optionally carries a Python
callable as its program — because what the paper exercises is the
*capability lifecycle* of processes, not an instruction set.
"""

import enum

from repro.errors import ProcessStateError


class ProcessState(enum.Enum):
    """Lifecycle of a memory-server process object."""

    STOPPED = "stopped"
    RUNNING = "running"
    DEAD = "dead"


class Process:
    """One process: named segments plus a state machine.

    ``segments`` maps a role name ("text", "data", "stack", ...) to the
    memory server's object number for that segment.
    """

    def __init__(self, name, segments, program=None):
        self.name = name
        self.segments = dict(segments)
        self.state = ProcessState.STOPPED
        self.program = program
        #: How many times the process has been started (experiment metric).
        self.runs = 0

    def start(self, segment_reader=None):
        """STOPPED -> RUNNING; runs the program callable if one is set.

        ``segment_reader`` is a function(segment_number) -> bytes the
        program may use to read its own segments, supplied by the memory
        server so the process never touches server internals.
        """
        if self.state is ProcessState.DEAD:
            raise ProcessStateError("process %r is dead" % self.name)
        if self.state is ProcessState.RUNNING:
            raise ProcessStateError("process %r is already running" % self.name)
        self.state = ProcessState.RUNNING
        self.runs += 1
        if self.program is not None:
            self.program(self, segment_reader)
        return self

    def stop(self):
        """RUNNING -> STOPPED."""
        if self.state is not ProcessState.RUNNING:
            raise ProcessStateError(
                "process %r is %s, not running" % (self.name, self.state.value)
            )
        self.state = ProcessState.STOPPED
        return self

    def kill(self):
        """Any state -> DEAD (idempotent)."""
        self.state = ProcessState.DEAD
        return self

    def __repr__(self):
        return "Process(%r, %s, %d segments)" % (
            self.name,
            self.state.value,
            len(self.segments),
        )
