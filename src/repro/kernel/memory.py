"""The memory server (§3.1): segments, processes, electronic disks.

"The memory server is a process that manages physical memory and
processes at the lowest level.  It is actually part of the kernel present
on each machine, but it communicates with other processes via the normal
message protocol."

The operations reproduce the paper's walkthrough: CREATE SEGMENT returns
a segment capability; WRITE/READ move data in and out; MAKE PROCESS takes
the segment capabilities as parameters and returns a process capability
"with which the child can be started, stopped, and generally
manipulated".  Directing CREATE SEGMENT at a *remote* machine's memory
server creates the child there — the paper's alternative to FORK+EXEC —
and a big segment read and written at offsets is the "electronic disk".
"""

from repro.core.rights import Rights
from repro.errors import BadRequest, InvalidCapability, OutOfSpace
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.kernel.process import Process

# Rights bits for memory-server capabilities.
R_READ = 0x01
R_WRITE = 0x02
R_CTL = 0x04  # start/stop a process

# Operation codes.
MEM_CREATE_SEGMENT = USER_BASE + 0
MEM_READ_SEGMENT = USER_BASE + 1
MEM_WRITE_SEGMENT = USER_BASE + 2
MEM_SEGMENT_SIZE = USER_BASE + 3
MEM_MAKE_PROCESS = USER_BASE + 4
MEM_START_PROCESS = USER_BASE + 5
MEM_STOP_PROCESS = USER_BASE + 6
MEM_PROCESS_INFO = USER_BASE + 7

#: Largest single READ/WRITE transfer, keeping messages datagram-sized.
MAX_TRANSFER = 48 * 1024


class Segment:
    """A fixed-size byte segment with bounds-checked access."""

    def __init__(self, size):
        if size < 0:
            raise BadRequest("segment size cannot be negative")
        self.memory = bytearray(size)

    @property
    def size(self):
        return len(self.memory)

    def read(self, offset, length):
        self._check_range(offset, length)
        return bytes(self.memory[offset:offset + length])

    def write(self, offset, data):
        self._check_range(offset, len(data))
        self.memory[offset:offset + len(data)] = data

    def _check_range(self, offset, length):
        if offset < 0 or length < 0 or offset + length > len(self.memory):
            raise BadRequest(
                "range [%d, %d) outside segment of %d bytes"
                % (offset, offset + length, len(self.memory))
            )


class MemoryServer(ObjectServer):
    """One machine's memory and process manager."""

    service_name = "memory server"

    def __init__(self, node, capacity=16 << 20, **kwargs):
        super().__init__(node, **kwargs)
        #: Total bytes of segment space this machine offers.
        self.capacity = capacity
        self.used = 0

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------

    @command(MEM_CREATE_SEGMENT)
    def _create_segment(self, ctx):
        """CREATE SEGMENT: size in the size field, optional initial data."""
        size = ctx.request.size
        if len(ctx.request.data) > size:
            raise BadRequest(
                "initial data of %d bytes exceeds segment size %d"
                % (len(ctx.request.data), size)
            )
        if self.used + size > self.capacity:
            raise OutOfSpace(
                "segment of %d bytes exceeds remaining capacity %d"
                % (size, self.capacity - self.used)
            )
        segment = Segment(size)
        if ctx.request.data:
            segment.write(0, ctx.request.data)
        self.used += size
        cap = self.table.create(segment)
        return ctx.ok(capability=cap)

    @command(MEM_READ_SEGMENT)
    def _read_segment(self, ctx):
        entry, _ = ctx.lookup(Rights(R_READ))
        segment = self._as_segment(entry)
        if ctx.request.size > MAX_TRANSFER:
            raise BadRequest("transfer larger than %d bytes" % MAX_TRANSFER)
        data = segment.read(ctx.request.offset, ctx.request.size)
        return ctx.ok(data=data)

    @command(MEM_WRITE_SEGMENT)
    def _write_segment(self, ctx):
        entry, _ = ctx.lookup(Rights(R_WRITE))
        segment = self._as_segment(entry)
        if len(ctx.request.data) > MAX_TRANSFER:
            raise BadRequest("transfer larger than %d bytes" % MAX_TRANSFER)
        segment.write(ctx.request.offset, ctx.request.data)
        return ctx.ok()

    @command(MEM_SEGMENT_SIZE)
    def _segment_size(self, ctx):
        entry, _ = ctx.lookup()
        segment = self._as_segment(entry)
        return ctx.ok(size=segment.size)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    @command(MEM_MAKE_PROCESS)
    def _make_process(self, ctx):
        """MAKE PROCESS: segment capabilities arrive as extra capabilities;
        the process name rides in the data field."""
        name = ctx.request.data.decode("utf-8", "replace") or "process"
        segments = {}
        for i, cap in enumerate(ctx.request.extra_caps):
            if cap.port != self.put_port:
                raise InvalidCapability(
                    "segment capability %d belongs to a different server" % i
                )
            entry, _ = self.table.lookup(cap, Rights(R_READ))
            if not isinstance(entry.data, Segment):
                raise BadRequest("capability %d is not a segment" % i)
            segments["seg%d" % i] = entry.number
        process = Process(name, segments)
        cap = self.table.create(process)
        return ctx.ok(capability=cap)

    @command(MEM_START_PROCESS)
    def _start_process(self, ctx):
        entry, _ = ctx.lookup(Rights(R_CTL))
        process = self._as_process(entry)
        process.start(segment_reader=self._segment_reader)
        return ctx.ok(data=process.state.value.encode())

    @command(MEM_STOP_PROCESS)
    def _stop_process(self, ctx):
        entry, _ = ctx.lookup(Rights(R_CTL))
        process = self._as_process(entry)
        process.stop()
        return ctx.ok(data=process.state.value.encode())

    @command(MEM_PROCESS_INFO)
    def _process_info(self, ctx):
        entry, _ = ctx.lookup(Rights(R_READ))
        process = self._as_process(entry)
        info = "%s state=%s segments=%d runs=%d" % (
            process.name,
            process.state.value,
            len(process.segments),
            process.runs,
        )
        return ctx.ok(data=info.encode("utf-8"))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _segment_reader(self, segment_number):
        entry = self.table._entry(segment_number)
        return bytes(entry.data.memory)

    @staticmethod
    def _as_segment(entry):
        if not isinstance(entry.data, Segment):
            raise BadRequest("object %d is not a segment" % entry.number)
        return entry.data

    @staticmethod
    def _as_process(entry):
        if not isinstance(entry.data, Process):
            raise BadRequest("object %d is not a process" % entry.number)
        return entry.data

    def on_destroy(self, entry):
        if isinstance(entry.data, Segment):
            self.used -= entry.data.size
        elif isinstance(entry.data, Process):
            entry.data.kill()

    def describe(self, entry):
        if isinstance(entry.data, Segment):
            return "segment of %d bytes" % entry.data.size
        if isinstance(entry.data, Process):
            return "process %r (%s)" % (entry.data.name, entry.data.state.value)
        return super().describe(entry)


class MemoryClient(ServiceClient):
    """Typed client for a (possibly remote) memory server."""

    def create_segment(self, size, initial=b""):
        """CREATE SEGMENT; returns the segment capability."""
        reply = self.call(MEM_CREATE_SEGMENT, size=size, data=initial)
        return reply.capability

    def read(self, segment_cap, offset, size):
        return self.call(
            MEM_READ_SEGMENT, capability=segment_cap, offset=offset, size=size
        ).data

    def write(self, segment_cap, offset, data):
        self.call(MEM_WRITE_SEGMENT, capability=segment_cap, offset=offset, data=data)

    def segment_size(self, segment_cap):
        return self.call(MEM_SEGMENT_SIZE, capability=segment_cap).size

    def make_process(self, name, segment_caps):
        """MAKE PROCESS from previously created segments."""
        reply = self.call(
            MEM_MAKE_PROCESS,
            data=name.encode("utf-8"),
            extra_caps=tuple(segment_caps),
        )
        return reply.capability

    def start(self, process_cap):
        return self.call(MEM_START_PROCESS, capability=process_cap).data.decode()

    def stop(self, process_cap):
        return self.call(MEM_STOP_PROCESS, capability=process_cap).data.decode()

    def process_info(self, process_cap):
        return self.call(MEM_PROCESS_INFO, capability=process_cap).data.decode()
